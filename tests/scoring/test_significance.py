"""Unit tests for Appendix A: null distributions and corrections."""

import numpy as np
import pytest

from repro.scoring import (
    benjamini_hochberg,
    bonferroni,
    null_r2_distribution,
    p_value_chebyshev,
    sample_null_r2_ols,
    sample_null_r2_ridge_cv,
)
from repro.scoring.significance import var_adjusted_r2


class TestNullDistribution:
    def test_beta_mean_formula(self):
        """E[r²] = (p-1)/(n-1) under the NULL (Appendix A.1)."""
        dist = null_r2_distribution(1000, 500)
        assert dist.mean() == pytest.approx(499 / 999, abs=1e-9)

    def test_mean_tends_to_one_as_p_approaches_n(self):
        low = null_r2_distribution(1000, 10).mean()
        high = null_r2_distribution(1000, 990).mean()
        assert high > 0.9 > 0.1 > low

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            null_r2_distribution(10, 10)
        with pytest.raises(ValueError):
            null_r2_distribution(10, 1)

    def test_empirical_ols_matches_beta(self):
        """Figure 12: simulated OLS r² draws follow the Beta law."""
        n, p = 200, 50
        draws = sample_null_r2_ols(n, p, n_draws=60, seed=1)
        dist = null_r2_distribution(n, p)
        assert draws.mean() == pytest.approx(dist.mean(), abs=0.03)
        # Two-sided coverage: most draws within the central 99% band.
        lo, hi = dist.ppf(0.005), dist.ppf(0.995)
        assert np.mean((draws >= lo) & (draws <= hi)) > 0.9

    def test_adjusted_draws_centred_at_zero(self):
        draws = sample_null_r2_ols(200, 50, n_draws=60, seed=2,
                                   adjusted=True)
        assert abs(draws.mean()) < 0.05


class TestChebyshevPValues:
    def test_paper_l2p50_example(self):
        """Appendix A.2: n=1440, p=50 gives p(s) ~ 4.9e-5 / s²."""
        p = p_value_chebyshev(1.0, 1440, 50)
        assert p == pytest.approx(4.9e-5, rel=0.05)

    def test_var_formula(self):
        assert var_adjusted_r2(1440, 50) == pytest.approx(
            2 * 49 / (1390 * 1439))

    def test_decreasing_in_score(self):
        ps = [p_value_chebyshev(s, 1000, 50) for s in (0.01, 0.1, 0.5)]
        assert ps == sorted(ps, reverse=True)

    def test_zero_score_p_one(self):
        assert p_value_chebyshev(0.0, 1000, 50) == 1.0

    def test_capped_at_one(self):
        assert p_value_chebyshev(1e-9, 1000, 500) == 1.0


class TestCorrections:
    def test_bonferroni(self):
        out = bonferroni([0.01, 0.2, 0.5])
        assert out == pytest.approx([0.03, 0.6, 1.0])

    def test_bh_monotone_set(self):
        p = [0.001, 0.002, 0.01, 0.5, 0.9]
        mask = benjamini_hochberg(p, q=0.05)
        assert mask.tolist() == [True, True, True, False, False]

    def test_bh_rejects_nothing_when_all_large(self):
        assert not benjamini_hochberg([0.5, 0.9, 0.7], q=0.05).any()

    def test_bh_accepts_contiguous_prefix(self):
        """BH significance is a prefix of the sorted p-values."""
        rng = np.random.default_rng(0)
        p = rng.random(50)
        mask = benjamini_hochberg(p, q=0.2)
        order = np.argsort(p)
        sorted_mask = mask[order]
        if sorted_mask.any():
            last_true = np.max(np.nonzero(sorted_mask)[0])
            assert sorted_mask[: last_true + 1].all()

    def test_bh_empty(self):
        assert benjamini_hochberg([]).size == 0


class TestRidgeNull:
    def test_cv_ridge_null_concentrates_near_zero(self):
        """Figure 13: cross-validated λ keeps the NULL score near 0."""
        scores, chosen = sample_null_r2_ridge_cv(
            150, 60, n_draws=8, seed=0)
        assert np.mean(scores) < 0.1
        assert np.all(chosen >= 0.1)

    def test_cv_prefers_large_lambda_under_null(self):
        _, chosen = sample_null_r2_ridge_cv(150, 60, n_draws=8, seed=1)
        assert np.median(chosen) >= 1e2
