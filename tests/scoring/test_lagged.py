"""Unit tests for lagged-feature scoring."""

import numpy as np
import pytest

from repro.scoring.base import ScoringError
from repro.scoring.joint import L2Scorer
from repro.scoring.lagged import LaggedScorer, best_lag, lag_matrix


class TestLagMatrix:
    def test_lag_zero_identity(self, rng):
        x = rng.standard_normal((20, 2))
        assert np.array_equal(lag_matrix(x, (0,)), x)

    def test_shift_semantics(self):
        x = np.arange(5.0)[:, None]
        lagged = lag_matrix(x, (2,))
        assert lagged[:, 0].tolist() == [0.0, 0.0, 0.0, 1.0, 2.0]

    def test_width_multiplies(self, rng):
        x = rng.standard_normal((30, 3))
        assert lag_matrix(x, (0, 1, 5)).shape == (30, 9)

    def test_validation(self, rng):
        x = rng.standard_normal((10, 1))
        with pytest.raises(ScoringError):
            lag_matrix(x, ())
        with pytest.raises(ScoringError):
            lag_matrix(x, (-1,))
        with pytest.raises(ScoringError):
            lag_matrix(x, (10,))


class TestLaggedScorer:
    def test_detects_delayed_effect(self, rng):
        """Y reacts to X three steps later: plain L2 misses most of it,
        the lag-augmented scorer recovers it."""
        n = 400
        x = rng.standard_normal(n)
        y = np.empty(n)
        y[3:] = x[:-3]
        y[:3] = 0.0
        y = (y + 0.2 * rng.standard_normal(n))[:, None]
        plain = L2Scorer().score(x[:, None], y)
        lagged = LaggedScorer(lags=(0, 1, 2, 3)).score(x[:, None], y)
        assert lagged > 0.7
        assert lagged > plain + 0.3

    def test_instantaneous_effect_unharmed(self, rng):
        n = 300
        x = rng.standard_normal(n)
        y = (x + 0.2 * rng.standard_normal(n))[:, None]
        plain = L2Scorer().score(x[:, None], y)
        lagged = LaggedScorer(lags=(0, 1, 2)).score(x[:, None], y)
        assert lagged > plain - 0.1

    def test_name_encodes_max_lag(self):
        assert LaggedScorer(lags=(0, 1, 4)).name == "L2-lag4"

    def test_empty_lags_rejected(self):
        with pytest.raises(ScoringError):
            LaggedScorer(lags=())

    def test_noise_still_scores_zero(self, rng):
        x = rng.standard_normal((300, 2))
        y = rng.standard_normal((300, 1))
        assert LaggedScorer(lags=(0, 1, 2)).score(x, y) < 0.1


class TestLaggedBatchPath:
    def test_batch_matches_sequential_bitwise(self, rng):
        scorer = LaggedScorer(lags=(0, 1, 2))
        y = rng.standard_normal((60, 1))
        z = rng.standard_normal((60, 2))
        xs = [rng.standard_normal((60, 2)) for _ in range(4)]
        for condition in (None, z):
            batch = scorer.score_batch(xs, y, condition)
            sequential = np.array([scorer.score(x, y, condition)
                                   for x in xs])
            assert np.array_equal(batch, sequential)

    def test_registered_and_vectorized(self):
        from repro.scoring import BatchScorer, get_scorer, list_scorers
        assert "l2-lag2" in list_scorers()
        scorer = get_scorer("L2-lag2")
        assert isinstance(scorer, LaggedScorer)
        assert isinstance(scorer, BatchScorer)
        assert scorer.lags == (0, 1, 2)

    def test_non_batch_inner_still_scores(self, rng):
        from repro.scoring.joint import L1Scorer
        scorer = LaggedScorer(lags=(0, 1), inner=L1Scorer())
        y = rng.standard_normal((50, 1))
        xs = [rng.standard_normal((50, 2)) for _ in range(3)]
        batch = scorer.score_batch(xs, y)
        sequential = np.array([scorer.score(x, y) for x in xs])
        assert np.array_equal(batch, sequential)

    def test_empty_batch(self):
        assert LaggedScorer().score_batch([], np.zeros((5, 1))).size == 0


class TestBestLag:
    def test_recovers_true_delay(self, rng):
        n = 500
        x = rng.standard_normal(n)
        y = np.empty(n)
        y[4:] = x[:-4]
        y[:4] = 0.0
        y = (y + 0.1 * rng.standard_normal(n))[:, None]
        lag, score = best_lag(x, y, max_lag=8)
        assert lag == 4
        assert score > 0.8

    def test_zero_lag_for_contemporaneous(self, rng):
        n = 400
        x = rng.standard_normal(n)
        y = (2 * x + 0.1 * rng.standard_normal(n))[:, None]
        lag, _ = best_lag(x, y, max_lag=5)
        assert lag == 0
