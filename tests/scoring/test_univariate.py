"""Unit tests for CorrMean / CorrMax scorers."""

import numpy as np
import pytest

from repro.scoring import CorrMaxScorer, CorrMeanScorer, correlation_matrix
from repro.scoring.base import ScoringError


class TestCorrelationMatrix:
    def test_shape(self, rng):
        rho = correlation_matrix(rng.standard_normal((50, 3)),
                                 rng.standard_normal((50, 2)))
        assert rho.shape == (3, 2)

    def test_perfect_correlation(self, rng):
        x = rng.standard_normal((100, 1))
        assert correlation_matrix(x, x)[0, 0] == pytest.approx(1.0)

    def test_anticorrelation_absolute(self, rng):
        x = rng.standard_normal((100, 1))
        assert correlation_matrix(x, -x)[0, 0] == pytest.approx(1.0)

    def test_constant_column_scores_zero(self, rng):
        x = np.ones((50, 1))
        y = rng.standard_normal((50, 1))
        assert correlation_matrix(x, y)[0, 0] == 0.0

    def test_values_in_unit_interval(self, rng):
        rho = correlation_matrix(rng.standard_normal((30, 4)),
                                 rng.standard_normal((30, 4)))
        assert (rho >= 0.0).all() and (rho <= 1.0).all()


class TestCorrScorers:
    def test_mean_vs_max_on_needle(self, rng):
        """A single strong column: max finds it, mean dilutes it."""
        y = rng.standard_normal((200, 1))
        x = rng.standard_normal((200, 10))
        x[:, 0] = y[:, 0] + 0.1 * rng.standard_normal(200)
        mean_score = CorrMeanScorer().score(x, y)
        max_score = CorrMaxScorer().score(x, y)
        assert max_score > 0.9
        assert mean_score < 0.3
        assert max_score > mean_score

    def test_independent_scores_low(self, rng):
        x = rng.standard_normal((300, 5))
        y = rng.standard_normal((300, 1))
        assert CorrMaxScorer().score(x, y) < 0.25
        assert CorrMeanScorer().score(x, y) < 0.1

    def test_score_range(self, rng):
        for scorer in (CorrMeanScorer(), CorrMaxScorer()):
            s = scorer.score(rng.standard_normal((50, 3)),
                             rng.standard_normal((50, 2)))
            assert 0.0 <= s <= 1.0

    def test_conditioning_blocks_confounder(self, rng):
        """Fork Z -> X, Z -> Y: partial correlation given Z vanishes."""
        z = rng.standard_normal((400, 1))
        x = z + 0.3 * rng.standard_normal((400, 1))
        y = z + 0.3 * rng.standard_normal((400, 1))
        marginal = CorrMaxScorer().score(x, y)
        conditional = CorrMaxScorer().score(x, y, z)
        assert marginal > 0.8
        assert conditional < 0.2

    def test_1d_inputs_accepted(self, rng):
        s = CorrMaxScorer().score(rng.standard_normal(50),
                                  rng.standard_normal(50))
        assert 0.0 <= s <= 1.0

    def test_row_mismatch_rejected(self, rng):
        with pytest.raises(ScoringError):
            CorrMeanScorer().score(rng.standard_normal((10, 1)),
                                   rng.standard_normal((11, 1)))

    def test_nan_rejected(self):
        x = np.array([[1.0], [np.nan]])
        with pytest.raises(ScoringError):
            CorrMaxScorer().score(x, np.ones((2, 1)))

    def test_names(self):
        assert CorrMeanScorer().name == "CorrMean"
        assert CorrMaxScorer().name == "CorrMax"
