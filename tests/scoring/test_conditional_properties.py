"""Property tests for the conditional-regression procedure (Appendix B).

Appendix B proves: for jointly multivariate-normal (X, Y, Z) with OLS
regressions, the residual cross-covariance equals Σxy − Σxz Σzz⁻¹ Σzy,
and the score is zero iff X ⊥ Y | Z.  These tests generate structured
Gaussian systems and check both directions.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.scoring.conditional import (
    conditional_score,
    residual_cross_covariance,
    residualize,
)


def _chain_data(n: int, seed: int, noise: float = 0.3):
    """X -> Z -> Y chain: X ⊥ Y | Z holds."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 1))
    z = x + noise * rng.standard_normal((n, 1))
    y = z + noise * rng.standard_normal((n, 1))
    return x, y, z


class TestResidualCrossCovariance:
    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_matches_schur_complement(self, seed):
        """Residual cross-cov equals Σxy − Σxz Σzz⁻¹ Σzy (sampled)."""
        rng = np.random.default_rng(seed)
        n = 500
        z = rng.standard_normal((n, 2))
        x = z @ rng.standard_normal((2, 2)) + rng.standard_normal((n, 2))
        y = z @ rng.standard_normal((2, 1)) + rng.standard_normal((n, 1))
        xc, yc, zc = x - x.mean(0), y - y.mean(0), z - z.mean(0)
        sxy = xc.T @ yc / n
        sxz = xc.T @ zc / n
        szz = zc.T @ zc / n
        szy = zc.T @ yc / n
        schur = sxy - sxz @ np.linalg.solve(szz, szy)
        direct = residual_cross_covariance(x, y, z)
        assert np.allclose(direct, schur, atol=1e-8)

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_chain_gives_near_zero_cross_covariance(self, seed):
        x, y, z = _chain_data(800, seed)
        cov = residual_cross_covariance(x, y, z)
        assert np.abs(cov).max() < 0.05


class TestConditionalScore:
    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_conditional_independence_scores_near_zero(self, seed):
        x, y, z = _chain_data(600, seed)
        assert conditional_score(x, y, z) < 0.1

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_direct_edge_survives_conditioning(self, seed):
        """X -> Y directly, Z an independent variable: score stays high."""
        rng = np.random.default_rng(seed)
        n = 500
        x = rng.standard_normal((n, 1))
        y = x + 0.3 * rng.standard_normal((n, 1))
        z = rng.standard_normal((n, 1))
        assert conditional_score(x, y, z) > 0.5

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_collider_conditioning_opens_path(self, seed):
        """X -> Z <- Y: X ⊥ Y marginally, but NOT given the collider Z.

        This is the subtle causal structure of §3.1 — conditioning on a
        common effect *induces* dependence.
        """
        rng = np.random.default_rng(seed)
        n = 800
        x = rng.standard_normal((n, 1))
        y = rng.standard_normal((n, 1))
        z_collider = x + y + 0.2 * rng.standard_normal((n, 1))
        z_unrelated = rng.standard_normal((n, 1))
        blocked = conditional_score(x, y, z_unrelated)
        opened = conditional_score(x, y, z_collider)
        assert blocked < 0.1
        assert opened > 0.3


class TestResidualize:
    def test_residual_orthogonal_to_z(self, rng):
        z = rng.standard_normal((300, 3))
        target = z @ np.ones(3) + rng.standard_normal(300)
        res = residualize(target, z, alpha=0.0)
        zc = z - z.mean(axis=0)
        assert np.abs(zc.T @ res).max() < 1e-6

    def test_1d_round_trip(self, rng):
        z = rng.standard_normal((100, 1))
        target = rng.standard_normal(100)
        assert residualize(target, z).ndim == 1

    def test_residual_of_z_itself_is_zero(self, rng):
        z = rng.standard_normal((100, 2))
        res = residualize(z, z, alpha=0.0)
        assert np.abs(res).max() < 1e-8
