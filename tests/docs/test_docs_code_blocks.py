"""Docs smoke: every fenced ``python`` block in the docs must execute.

README.md and docs/*.md are living documents; their code blocks are the
first thing a new user copies.  This test extracts each fenced
```` ```python ```` block and ``exec``s it in a fresh namespace, so an
API rename or signature change that would break the docs breaks CI
instead.  Shell/text fences are ignored — mark a block ``text`` or
``bash`` if it is not meant to run.
"""

from __future__ import annotations

import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _doc_files() -> list[pathlib.Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def _blocks() -> list[tuple[str, int, str]]:
    out = []
    for path in _doc_files():
        for i, block in enumerate(_FENCE.findall(path.read_text())):
            out.append((path.name, i, block))
    return out


def test_docs_exist_and_have_runnable_examples():
    assert (REPO_ROOT / "README.md").exists()
    assert (REPO_ROOT / "docs" / "architecture.md").exists()
    assert any(name == "README.md" for name, _, _ in _blocks()), (
        "README.md should contain at least one ```python example")


@pytest.mark.parametrize(
    "name,index,source",
    _blocks(),
    ids=[f"{name}[{index}]" for name, index, _ in _blocks()],
)
def test_python_block_executes(name: str, index: int, source: str):
    namespace: dict = {"__name__": f"doc_{name}_{index}"}
    exec(compile(source, f"<{name} block {index}>", "exec"), namespace)
