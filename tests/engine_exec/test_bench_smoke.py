"""Smoke test: the Figure 10 backend benchmark emits well-formed rows.

Loads ``benchmarks/bench_figure10_score_time.py`` by path (the benchmark
tree is not an importable package) and runs its backend comparison on a
tiny workload, checking that both the legacy thread backend and the
batched backend produce complete, sane timing rows.
"""

import importlib.util
import math
import pathlib

BENCH_PATH = (pathlib.Path(__file__).resolve().parents[2]
              / "benchmarks" / "bench_figure10_score_time.py")


def _load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_figure10_score_time_smoke", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_backend_rows_well_formed():
    bench = _load_bench_module()
    hypotheses = bench.synthetic_hypotheses(n_families=8, n_samples=60)
    rows = bench.backend_timing_rows(hypotheses, scorer="L2",
                                     backends=("thread", "batch"),
                                     n_workers=2)
    assert [row["backend"] for row in rows] == ["thread", "batch"]
    for row in rows:
        assert set(row) == set(bench.BACKEND_ROW_FIELDS)
        assert row["scorer"] == "L2"
        assert row["n_hypotheses"] == 8
        assert row["n_workers"] == 2
        for key in ("wall_seconds", "mean_seconds_per_family",
                    "max_seconds_per_family"):
            assert isinstance(row[key], float)
            assert math.isfinite(row[key])
            assert row[key] > 0.0
        assert (row["max_seconds_per_family"]
                >= row["mean_seconds_per_family"])
    by_backend = {row["backend"]: row for row in rows}
    # Thread timings are individually measured; batch ones are equal
    # shares of the stacked call and flagged as such.
    assert by_backend["thread"]["share_attributed"] is False
    assert by_backend["batch"]["share_attributed"] is True
    rendered = bench.format_backend_rows(rows)
    assert "thread" in rendered and "batch" in rendered
    assert "attributed" in rendered


def test_transfer_rows_well_formed():
    bench = _load_bench_module()
    hypotheses = bench.synthetic_hypotheses(n_families=8, n_samples=60)
    rows = bench.serialization_overhead_rows(hypotheses, scorer="CorrMax",
                                             n_workers=2)
    assert [row["transfer"] for row in rows] == ["pickle", "shm"]
    for row in rows:
        assert set(row) == set(bench.TRANSFER_ROW_FIELDS)
        assert row["scorer"] == "CorrMax"
        assert row["n_hypotheses"] == 8
        assert row["bytes_moved"] > 0
        assert 0.0 <= row["serialization_share"] <= 1.0
    by_transfer = {row["transfer"]: row for row in rows}
    assert (by_transfer["shm"]["bytes_moved"]
            < by_transfer["pickle"]["bytes_moved"])
    rendered = bench.format_transfer_rows(rows)
    assert "pickle" in rendered and "shm" in rendered


def test_synthetic_workload_shape():
    bench = _load_bench_module()
    hypotheses = bench.synthetic_hypotheses(n_families=5, n_samples=40,
                                            n_features=2)
    assert len(hypotheses) == 5
    assert all(h.y.name == "target" for h in hypotheses)
    assert all(h.x.n_features == 2 for h in hypotheses)
    assert all(h.y is hypotheses[0].y for h in hypotheses)
