"""Regression tests for the batch planner's grouping and timing rules."""

import gc

import numpy as np
import pytest

from repro.core.families import FamilySet, FeatureFamily
from repro.core.hypothesis import generate_hypotheses
from repro.engine_exec import HypothesisExecutor, execute_batches, plan_batches
from repro.scoring import get_scorer


def _families(rng, n=5, n_samples=40):
    target = rng.standard_normal(n_samples)
    grid = np.arange(n_samples)
    fams = [FeatureFamily("target", target[:, None], ["t:0"], grid)]
    for i in range(n):
        fams.append(FeatureFamily(
            f"fam_{i}", rng.standard_normal((n_samples, 2)),
            [f"fam_{i}:{j}" for j in range(2)], grid))
    return FamilySet(fams)


class _LazyHypothesis:
    """A hypothesis whose Y family is rebuilt on every access.

    Models a lazily materialising stream with a one-slot cache: ``.y``
    returns a *fresh* family object each time and only the most recent
    one stays alive, so earlier families are garbage-collected
    mid-stream.  Under the old planner the ``id()`` keyed off one access
    referred to an object that died before the next hypothesis was
    planned, CPython handed its address to that hypothesis's fresh
    family, and hypotheses from different (Y, Z) groups silently merged
    (observed as 8 groups collapsing to 6 with members paired to the
    wrong Y).  The members list is preallocated so the freed family
    block is the next same-size allocation — the deterministic reuse
    pattern that reproduced the bug.
    """

    _cache: FeatureFamily | None = None

    def __init__(self, x: FeatureFamily, y_matrix: np.ndarray,
                 grid: np.ndarray) -> None:
        self.x = x
        self._y_matrix = y_matrix
        self._grid = grid
        self._members = ["t:0"]

    @property
    def y(self) -> FeatureFamily:
        fam = FeatureFamily("target", self._y_matrix, self._members,
                            self._grid)
        _LazyHypothesis._cache = fam    # frees the previous family
        return fam

    @property
    def z(self) -> None:
        return None

    @property
    def name(self) -> str:
        return self.x.name

    def matrices(self):
        return self.x.matrix, self.y.matrix, None


class TestPlanBatches:
    def test_shared_families_collapse_to_one_batch(self, rng):
        hypotheses = generate_hypotheses(_families(rng), "target")
        batches = plan_batches(hypotheses)
        assert len(batches) == 1
        assert batches[0].indices == list(range(len(hypotheses)))

    def test_no_condition_uses_sentinel_not_zero(self, rng):
        """z=None groups must not rely on a forgeable literal key."""
        from repro.engine_exec import batch as batch_module
        assert batch_module._NO_CONDITION is not None
        assert not isinstance(batch_module._NO_CONDITION, int)
        hypotheses = generate_hypotheses(_families(rng), "target")
        assert all(h.z is None for h in hypotheses)
        (batch,) = plan_batches(hypotheses)
        assert batch.z is None

    def test_distinct_y_objects_stay_in_distinct_batches(self, rng):
        fams = _families(rng)
        hypotheses = generate_hypotheses(fams, "target")
        # Same values, different object: must land in its own batch.
        other_y = FeatureFamily("target", hypotheses[0].y.matrix.copy(),
                                ["t:0"], hypotheses[0].y.grid)
        rebound = type(hypotheses[0])(x=hypotheses[0].x, y=other_y)
        batches = plan_batches(list(hypotheses) + [rebound])
        assert len(batches) == 2

    def test_lazy_families_never_merge_across_targets(self, rng):
        """Regression: id-reuse across gc'd lazy families merged groups.

        Every hypothesis materialises a fresh Y per access and only the
        newest stays alive, so each keyed family's address is freed (and
        reusable) before the next hypothesis is planned.  The planner
        must key each one consistently with the object it stores: every
        member of a batch must see exactly the batch's Y matrix, and
        scoring through the batch path must equal scoring hypothesis by
        hypothesis.
        """
        gc.collect()
        n_samples = 40
        grid = np.arange(n_samples)
        hypotheses = []
        for i in range(8):
            h_rng = np.random.default_rng(1000 + i)
            x = FeatureFamily(f"fam_{i}", h_rng.standard_normal((n_samples, 2)),
                              [f"fam_{i}:{j}" for j in range(2)], grid)
            y_matrix = h_rng.standard_normal((n_samples, 1)) + i
            hypotheses.append(_LazyHypothesis(x, y_matrix, grid))
        batches = plan_batches(hypotheses)
        for batch in batches:
            for h in batch.hypotheses:
                assert np.array_equal(batch.y.matrix, h.y.matrix)
        scorer = get_scorer("CorrMax")
        scores, _, _ = execute_batches(hypotheses, scorer)
        expected = np.array([scorer.score(*h.matrices()) for h in hypotheses])
        assert np.array_equal(scores, expected)


def _mixed_shape_families(rng, widths=(2, 2, 2, 3), n_samples=40):
    """Families sharing one target but with differing feature counts."""
    target = rng.standard_normal(n_samples)
    grid = np.arange(n_samples)
    fams = [FeatureFamily("target", target[:, None], ["t:0"], grid)]
    for i, width in enumerate(widths):
        fams.append(FeatureFamily(
            f"fam_{i}", rng.standard_normal((n_samples, width)),
            [f"fam_{i}:{j}" for j in range(width)], grid))
    return FamilySet(fams)


class TestAttributedTimings:
    def test_batch_scorer_timings_flagged_as_attributed(self, rng):
        hypotheses = generate_hypotheses(_families(rng), "target")
        scores, seconds, attributed = execute_batches(hypotheses,
                                                      get_scorer("L2"))
        assert attributed.all()
        # Equal shares within one group.
        assert np.all(seconds == seconds[0])

    def test_shape_groups_timed_individually(self, rng):
        """Per-shape-group attribution: one measured wall time per
        stacked call, equal shares only *within* a shape group."""
        hypotheses = generate_hypotheses(
            _mixed_shape_families(rng), "target")
        widths = [h.x.matrix.shape[1] for h in hypotheses]
        scorer = get_scorer("L2")
        scores, seconds, attributed = execute_batches(hypotheses, scorer)
        wide = [i for i, w in enumerate(widths) if w == 3]
        narrow = [i for i, w in enumerate(widths) if w == 2]
        assert len(wide) == 1 and len(narrow) == 3
        # The singleton shape group is individually measured.
        assert not attributed[wide[0]]
        # The 3-member group shares one measured elapsed time.
        assert attributed[narrow].all()
        assert np.all(seconds[narrow] == seconds[narrow[0]])
        # Scores stay bitwise identical to the sequential path.
        expected = np.array([scorer.score(*h.matrices())
                             for h in hypotheses])
        assert np.array_equal(scores, expected)

    def test_l1_batches_like_every_other_scorer(self, rng):
        """L1 implements score_batch (shared Y-side work), so its
        same-shape groups get attributed shares like L2's — and scores
        stay bitwise identical to the sequential path."""
        hypotheses = generate_hypotheses(_families(rng), "target")
        scorer = get_scorer("L1")
        scores, _, attributed = execute_batches(hypotheses, scorer)
        assert attributed.all()
        expected = np.array([scorer.score(*h.matrices())
                             for h in hypotheses])
        assert np.array_equal(scores, expected)

    def test_custom_scorer_without_batch_path_is_adapted(self, rng):
        from repro.scoring.base import Scorer

        class Plain(Scorer):
            name = "plain"

            def score(self, x, y, z=None):
                return float(np.corrcoef(x[:, 0], y[:, 0])[0, 1] ** 2)

        hypotheses = generate_hypotheses(_families(rng), "target")
        scorer = Plain()
        scores, _, attributed = execute_batches(hypotheses, scorer)
        expected = np.array([scorer.score(*h.matrices())
                             for h in hypotheses])
        assert np.array_equal(scores, expected)
        assert attributed.all()    # adapted loop is timed per shape group

    def test_single_hypothesis_batch_is_measured(self, rng):
        hypotheses = generate_hypotheses(_families(rng, n=1), "target")
        _, _, attributed = execute_batches(hypotheses, get_scorer("L2"))
        assert not attributed.any()

    def test_report_exposes_attribution(self, rng):
        hypotheses = generate_hypotheses(_families(rng), "target")
        batch = HypothesisExecutor(backend="batch").run(hypotheses,
                                                        scorer="L2")
        assert batch.has_attributed_timings()
        assert all(t.attributed for t in batch.timings)
        sequential = HypothesisExecutor(n_workers=1).run(hypotheses,
                                                         scorer="L2")
        assert not sequential.has_attributed_timings()
        assert all(not t.attributed for t in sequential.timings)
