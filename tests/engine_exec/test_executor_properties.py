"""Property-based tests for HypothesisExecutor edge cases.

Edge cases the satellite checklist calls out: empty hypothesis list,
single hypothesis, more workers than hypotheses, and determinism of the
ranking across worker counts and backends.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.families import FamilySet, FeatureFamily
from repro.core.hypothesis import generate_hypotheses
from repro.engine_exec import BACKENDS, HypothesisExecutor


def _build_hypotheses(n_families: int, n_samples: int = 48):
    rng = np.random.default_rng(2024)
    target = rng.standard_normal(n_samples)
    grid = np.arange(n_samples)
    fams = [FeatureFamily("target", target[:, None], ["t:0"], grid)]
    for i in range(n_families):
        coupling = 0.8 if i == 0 else 0.0
        data = (coupling * target[:, None]
                + rng.standard_normal((n_samples, 2)))
        fams.append(FeatureFamily(
            f"fam_{i}", data, [f"fam_{i}:{j}" for j in range(2)], grid))
    return generate_hypotheses(FamilySet(fams), "target")


HYPOTHESES = _build_hypotheses(7)
REFERENCE = HypothesisExecutor(n_workers=1).run(HYPOTHESES, scorer="CorrMax")
REFERENCE_RANKING = [r.family for r in REFERENCE.score_table.results]
REFERENCE_SCORES = dict(REFERENCE.score_table.all_scores)


@given(n_workers=st.integers(min_value=1, max_value=9),
       backend=st.sampled_from(["thread", "batch"]))
@settings(max_examples=12, deadline=None)
def test_ranking_deterministic_across_worker_counts(n_workers, backend):
    report = HypothesisExecutor(n_workers=n_workers, backend=backend).run(
        HYPOTHESES, scorer="CorrMax")
    assert [r.family for r in report.score_table.results] == REFERENCE_RANKING
    assert dict(report.score_table.all_scores) == REFERENCE_SCORES


@pytest.mark.parametrize("backend", BACKENDS)
def test_empty_hypothesis_list(backend):
    report = HypothesisExecutor(n_workers=2, backend=backend).run(
        [], scorer="CorrMax")
    assert report.timings == []
    assert report.score_table.results == []
    assert report.mean_seconds_per_family() == 0.0
    assert report.max_seconds_per_family() == 0.0


@pytest.mark.parametrize("backend", BACKENDS)
def test_single_hypothesis(backend):
    single = HYPOTHESES[:1]
    report = HypothesisExecutor(n_workers=4, backend=backend).run(
        single, scorer="CorrMax")
    assert len(report.timings) == 1
    assert len(report.score_table.results) == 1
    row = report.score_table.results[0]
    assert row.family == single[0].name
    assert row.rank == 1
    assert row.score == REFERENCE_SCORES[single[0].name]


@pytest.mark.parametrize("backend", BACKENDS)
def test_more_workers_than_hypotheses(backend):
    report = HypothesisExecutor(n_workers=32, backend=backend).run(
        HYPOTHESES, scorer="CorrMax")
    assert [r.family for r in report.score_table.results] == REFERENCE_RANKING
    assert len(report.timings) == len(HYPOTHESES)


def test_batch_timings_cover_every_hypothesis():
    report = HypothesisExecutor(backend="batch").run(HYPOTHESES, scorer="L2")
    assert len(report.timings) == len(HYPOTHESES)
    assert all(t.seconds > 0.0 for t in report.timings)
    assert {t.family for t in report.timings} == {h.name for h in HYPOTHESES}
