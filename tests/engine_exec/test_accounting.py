"""Unit tests for serialisation accounting."""

import numpy as np

from repro.engine_exec import SerializationAccounting


class TestRoundTrip:
    def test_values_preserved(self, rng):
        acct = SerializationAccounting()
        x = rng.standard_normal((20, 5))
        (restored,) = acct.round_trip(x)
        assert np.array_equal(restored, x)

    def test_none_passes_through(self):
        acct = SerializationAccounting()
        out = acct.round_trip(np.zeros((2, 2)), None)
        assert out[1] is None

    def test_bytes_counted(self):
        acct = SerializationAccounting()
        acct.round_trip(np.zeros((10, 10)))
        assert acct.bytes_moved == 10 * 10 * 8

    def test_non_contiguous_input_handled(self, rng):
        acct = SerializationAccounting()
        x = rng.standard_normal((10, 10))[:, ::2]   # strided view
        (restored,) = acct.round_trip(x)
        assert np.array_equal(restored, x)

    def test_share_computation(self):
        acct = SerializationAccounting()
        acct.serialize_seconds = 1.0
        acct.score_seconds = 3.0
        assert acct.serialization_share == 0.25
        assert acct.total_seconds == 4.0

    def test_share_zero_when_untouched(self):
        assert SerializationAccounting().serialization_share == 0.0

    def test_summary_keys(self):
        summary = SerializationAccounting().summary()
        assert set(summary) == {"transfer", "calls", "bytes_moved",
                                "serialize_seconds", "score_seconds",
                                "serialization_share"}
        assert summary["transfer"] == "pickle"


class TestTransferModes:
    def test_pickle_round_trip_preserves_values(self, rng):
        acct = SerializationAccounting()
        x = rng.standard_normal((20, 5))
        restored, none = acct.pickle_round_trip(x, None)
        assert np.array_equal(restored, x)
        assert none is None
        assert acct.calls == 1
        assert acct.serialize_seconds > 0.0

    def test_pickle_bytes_include_protocol_overhead(self):
        acct = SerializationAccounting()
        acct.pickle_round_trip(np.zeros((10, 10)))
        assert acct.bytes_moved > 10 * 10 * 8      # payload + pickle frame

    def test_shared_copy_recorded_once_per_group(self):
        acct = SerializationAccounting(transfer="shm")
        acct.record_shared_copy(0.25, 4096)
        acct.record_score_time(0.75)
        assert acct.bytes_moved == 4096
        assert acct.calls == 1
        assert acct.serialization_share == 0.25
        assert acct.summary()["transfer"] == "shm"
