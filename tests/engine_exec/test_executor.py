"""Unit tests for the parallel hypothesis executor."""

import numpy as np
import pytest

from repro.core.families import FamilySet, FeatureFamily
from repro.core.hypothesis import generate_hypotheses
from repro.engine_exec import HypothesisExecutor


@pytest.fixture
def hypotheses(rng):
    n = 150
    target = rng.standard_normal(n)
    fams = [FeatureFamily("target", target[:, None], ["t:0"],
                          np.arange(n))]
    for i in range(8):
        coupling = 1.0 if i == 0 else 0.0
        data = (coupling * target[:, None]
                + rng.standard_normal((n, 3)))
        fams.append(FeatureFamily(f"fam_{i}", data,
                                  [f"fam_{i}:{j}" for j in range(3)],
                                  np.arange(n)))
    families = FamilySet(fams)
    return generate_hypotheses(families, "target")


class TestHypothesisExecutor:
    def test_parallel_matches_serial_ranking(self, hypotheses):
        serial = HypothesisExecutor(n_workers=1).run(
            hypotheses, scorer="L2")
        parallel = HypothesisExecutor(n_workers=4).run(
            hypotheses, scorer="L2")
        serial_rank = [r.family for r in serial.score_table.results]
        parallel_rank = [r.family for r in parallel.score_table.results]
        assert serial_rank == parallel_rank
        assert serial_rank[0] == "fam_0"

    def test_timings_per_hypothesis(self, hypotheses):
        report = HypothesisExecutor(n_workers=2).run(hypotheses,
                                                     scorer="L2")
        assert len(report.timings) == len(hypotheses)
        assert report.mean_seconds_per_family() > 0.0
        assert report.max_seconds_per_family() >= \
            report.mean_seconds_per_family()

    def test_wall_time_recorded(self, hypotheses):
        report = HypothesisExecutor(n_workers=2).run(hypotheses,
                                                     scorer="CorrMax")
        assert report.wall_seconds > 0.0
        assert report.score_table.total_seconds == report.wall_seconds

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            HypothesisExecutor(n_workers=0)

    def test_serialization_accounting(self, hypotheses):
        executor = HypothesisExecutor(n_workers=1,
                                      measure_serialization=True)
        report = executor.run(hypotheses, scorer="CorrMax")
        accounting = report.accounting
        assert accounting is not None
        assert accounting.calls == len(hypotheses)
        assert accounting.bytes_moved > 0
        assert 0.0 <= accounting.serialization_share <= 1.0

    def test_univariate_serialization_share_exceeds_joint(self, hypotheses):
        """§6.2: serialisation is a larger share for cheap scorers."""
        cheap = HypothesisExecutor(
            n_workers=1, measure_serialization=True).run(
            hypotheses, scorer="CorrMax").accounting
        joint = HypothesisExecutor(
            n_workers=1, measure_serialization=True).run(
            hypotheses, scorer="L2").accounting
        assert cheap.serialization_share > joint.serialization_share

    def test_empty_hypothesis_list(self):
        report = HypothesisExecutor().run([], scorer="CorrMax")
        assert report.timings == []
        assert report.mean_seconds_per_family() == 0.0
