"""Backend parity: every registered scorer, every backend, one Score Table.

The batched execution subsystem promises *bitwise identical* Score
Tables to the sequential path — scores, ranks, p-values, multiple-
testing flags.  These tests sweep every scorer in the registry across
``backend="batch"``, ``backend="thread"``, ``backend="process"`` and the
``n_workers=1`` sequential loop, with and without a conditioning Z, and
assert exact float equality throughout.
"""

import numpy as np
import pytest

from repro.core.families import FamilySet, FeatureFamily
from repro.core.hypothesis import generate_hypotheses
from repro.core.ranking import rank_families
from repro.engine_exec import HypothesisExecutor
from repro.scoring import list_scorers


def _make_hypotheses(seed: int, n_families: int = 6, n_samples: int = 60,
                     n_features: int = 2, with_z: bool = False):
    rng = np.random.default_rng(seed)
    target = rng.standard_normal(n_samples)
    grid = np.arange(n_samples)
    fams = [FeatureFamily("target", target[:, None], ["t:0"], grid)]
    if with_z:
        fams.append(FeatureFamily(
            "cond", rng.standard_normal((n_samples, 2)),
            ["z:0", "z:1"], grid))
    for i in range(n_families):
        coupling = 1.0 if i == 0 else 0.0
        width = n_features if i % 2 == 0 else n_features + 1
        data = (coupling * target[:, None]
                + rng.standard_normal((n_samples, width)))
        fams.append(FeatureFamily(
            f"fam_{i}", data, [f"fam_{i}:{j}" for j in range(width)], grid))
    families = FamilySet(fams)
    return generate_hypotheses(families, "target",
                               condition="cond" if with_z else None)


@pytest.fixture(scope="module")
def narrow_hypotheses():
    return _make_hypotheses(seed=101)


@pytest.fixture(scope="module")
def conditioned_hypotheses():
    return _make_hypotheses(seed=202, with_z=True)


@pytest.fixture(scope="module")
def wide_hypotheses():
    """Families wider than 50 features, so L2-P50 actually projects."""
    return _make_hypotheses(seed=303, n_families=4, n_features=55)


def assert_tables_identical(expected, actual):
    assert len(expected.results) == len(actual.results)
    for want, got in zip(expected.results, actual.results):
        assert got.family == want.family
        assert got.rank == want.rank
        assert got.score == want.score          # exact, not approx
        assert got.n_features == want.n_features
        assert got.p_value == want.p_value
        assert got.p_bonferroni == want.p_bonferroni
        assert got.significant_bh == want.significant_bh
    assert actual.all_scores == expected.all_scores


@pytest.mark.parametrize("scorer_name", list_scorers())
@pytest.mark.parametrize("fixture_name",
                         ["narrow_hypotheses", "conditioned_hypotheses"])
def test_batch_backend_matches_sequential(scorer_name, fixture_name, request):
    hypotheses = request.getfixturevalue(fixture_name)
    sequential = HypothesisExecutor(n_workers=1).run(
        hypotheses, scorer=scorer_name)
    batch = HypothesisExecutor(backend="batch").run(
        hypotheses, scorer=scorer_name)
    assert_tables_identical(sequential.score_table, batch.score_table)


@pytest.mark.parametrize("scorer_name", list_scorers())
def test_thread_and_process_backends_match_sequential(scorer_name,
                                                      narrow_hypotheses):
    sequential = HypothesisExecutor(n_workers=1).run(
        narrow_hypotheses, scorer=scorer_name)
    for backend in ("thread", "process"):
        parallel = HypothesisExecutor(n_workers=3, backend=backend).run(
            narrow_hypotheses, scorer=scorer_name)
        assert_tables_identical(sequential.score_table, parallel.score_table)


@pytest.mark.parametrize("scorer_name", ["l2-p50", "l2-p500"])
def test_projection_batch_parity_on_wide_families(scorer_name,
                                                  wide_hypotheses):
    """The random-sketch path must replay identical draws per hypothesis."""
    sequential = HypothesisExecutor(n_workers=1).run(
        wide_hypotheses, scorer=scorer_name)
    batch = HypothesisExecutor(backend="batch").run(
        wide_hypotheses, scorer=scorer_name)
    assert_tables_identical(sequential.score_table, batch.score_table)


@pytest.mark.parametrize("scorer_name", ["l2-pca50", "l2-lag2"])
def test_pca_and_lagged_batch_parity_on_wide_families(scorer_name,
                                                      wide_hypotheses):
    """The stacked-SVD truncation and lag paths match sequentially."""
    sequential = HypothesisExecutor(n_workers=1).run(
        wide_hypotheses, scorer=scorer_name)
    batch = HypothesisExecutor(backend="batch").run(
        wide_hypotheses, scorer=scorer_name)
    assert_tables_identical(sequential.score_table, batch.score_table)


@pytest.mark.parametrize("scorer_name", ["l2-pca50", "l2-lag2"])
def test_pca_and_lagged_are_vectorized(scorer_name):
    """Neither scorer falls back to the per-hypothesis loop anymore."""
    from repro.scoring import BatchScorer, get_scorer
    assert isinstance(get_scorer(scorer_name), BatchScorer)


def test_rank_families_backend_plumbing(narrow_hypotheses):
    """rank_families(backend=...) delegates and matches the in-line loop."""
    inline = rank_families(narrow_hypotheses, scorer="L2")
    for backend in ("thread", "process", "batch"):
        delegated = rank_families(narrow_hypotheses, scorer="L2",
                                  backend=backend, n_workers=2)
        assert_tables_identical(inline, delegated)
    with pytest.raises(ValueError):
        rank_families(narrow_hypotheses, scorer="L2", backend="batch",
                      score_fn=lambda h: 0.0)


def test_batch_backend_falls_back_without_vectorized_path(narrow_hypotheses):
    """Scorers without a BatchScorer implementation still work batched.

    Only L1 lacks a vectorized path now (coordinate descent shares no
    factorisation); PCA and lagged scoring batch since PR 2.
    """
    sequential = HypothesisExecutor(n_workers=1).run(
        narrow_hypotheses, scorer="L1")
    batch = HypothesisExecutor(backend="batch").run(
        narrow_hypotheses, scorer="L1")
    assert_tables_identical(sequential.score_table, batch.score_table)


def test_invalid_backend_rejected():
    with pytest.raises(ValueError):
        HypothesisExecutor(backend="spark")
