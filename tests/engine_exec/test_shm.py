"""Unit tests for the shared-memory transfer tier."""

import numpy as np
import pytest

from repro.core.families import FamilySet, FeatureFamily
from repro.core.hypothesis import generate_hypotheses
from repro.engine_exec import (
    HypothesisExecutor,
    SerializationAccounting,
    SharedMatrixPool,
)
from repro.engine_exec.shm import attach_segment, resolve_ref


def _make_hypotheses(rng, n_families=6, n_samples=60, with_z=False):
    target = rng.standard_normal(n_samples)
    grid = np.arange(n_samples)
    fams = [FeatureFamily("target", target[:, None], ["t:0"], grid)]
    if with_z:
        fams.append(FeatureFamily(
            "cond", rng.standard_normal((n_samples, 2)), ["z:0", "z:1"],
            grid))
    for i in range(n_families):
        coupling = 1.0 if i == 0 else 0.0
        data = (coupling * target[:, None]
                + rng.standard_normal((n_samples, 3)))
        fams.append(FeatureFamily(
            f"fam_{i}", data, [f"fam_{i}:{j}" for j in range(3)], grid))
    return generate_hypotheses(FamilySet(fams), "target",
                               condition="cond" if with_z else None)


class TestSharedMatrixPool:
    def test_share_and_resolve_round_trip(self, rng):
        matrices = [rng.standard_normal((30, 4)),
                    rng.standard_normal((30, 1)),
                    rng.standard_normal((30, 7))]
        with SharedMatrixPool() as pool:
            refs = pool.share_group(matrices)
            assert pool.n_segments == 1
            for ref, matrix in zip(refs, matrices):
                restored = resolve_ref(ref)
                assert np.array_equal(restored, matrix)
                assert restored.dtype == np.float64

    def test_refs_are_tiny_and_offsets_pack(self, rng):
        matrices = [rng.standard_normal((10, 2)),
                    rng.standard_normal((10, 3))]
        with SharedMatrixPool() as pool:
            a, b = pool.share_group(matrices)
            assert a.segment == b.segment
            assert a.offset == 0
            assert b.offset == a.nbytes == 10 * 2 * 8

    def test_resolved_view_is_read_only(self, rng):
        with SharedMatrixPool() as pool:
            (ref,) = pool.share_group([rng.standard_normal((5, 5))])
            view = resolve_ref(ref)
            with pytest.raises(ValueError):
                view[0, 0] = 1.0

    def test_non_contiguous_input_handled(self, rng):
        strided = rng.standard_normal((10, 10))[:, ::2]
        with SharedMatrixPool() as pool:
            (ref,) = pool.share_group([strided])
            assert np.array_equal(resolve_ref(ref), strided)

    def test_resolve_none_passes_through(self):
        assert resolve_ref(None) is None

    def test_close_unlinks_segments(self, rng):
        pool = SharedMatrixPool()
        (ref,) = pool.share_group([rng.standard_normal((4, 4))])
        name = ref.segment
        pool.close()
        from multiprocessing import shared_memory
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name, create=False)
        pool.close()            # idempotent

    def test_share_after_close_rejected(self, rng):
        pool = SharedMatrixPool()
        pool.close()
        with pytest.raises(RuntimeError):
            pool.share_group([rng.standard_normal((2, 2))])

    def test_attach_segment_caches_per_name(self, rng):
        with SharedMatrixPool() as pool:
            (ref,) = pool.share_group([rng.standard_normal((3, 3))])
            first = attach_segment(ref.segment)
            assert attach_segment(ref.segment) is first

    def test_accounting_counts_group_bytes_once(self, rng):
        accounting = SerializationAccounting(transfer="shm")
        matrices = [rng.standard_normal((20, 5)),
                    rng.standard_normal((20, 1))]
        with SharedMatrixPool(accounting=accounting) as pool:
            pool.share_group(matrices)
        assert accounting.bytes_moved == (20 * 5 + 20 * 1) * 8
        assert accounting.calls == 1
        assert accounting.serialize_seconds > 0.0


class TestShmBackendParity:
    def test_shm_and_pickle_tables_bitwise_identical(self, rng):
        hypotheses = _make_hypotheses(rng)
        reports = {
            transfer: HypothesisExecutor(
                n_workers=3, backend="process", transfer=transfer,
            ).run(hypotheses, scorer="L2")
            for transfer in ("pickle", "shm")
        }
        pickle_table = reports["pickle"].score_table
        shm_table = reports["shm"].score_table
        assert shm_table.all_scores == pickle_table.all_scores
        for want, got in zip(pickle_table.results, shm_table.results):
            assert got.family == want.family
            assert got.rank == want.rank
            assert got.score == want.score      # exact, not approx
            assert got.p_value == want.p_value

    def test_shm_matches_sequential_with_condition(self, rng):
        hypotheses = _make_hypotheses(rng, with_z=True)
        sequential = HypothesisExecutor(n_workers=1).run(
            hypotheses, scorer="L2")
        shm = HypothesisExecutor(n_workers=2, backend="process",
                                 transfer="shm").run(hypotheses, scorer="L2")
        assert (shm.score_table.all_scores
                == sequential.score_table.all_scores)

    def test_report_records_transfer_mode(self, rng):
        hypotheses = _make_hypotheses(rng, n_families=3)
        shm = HypothesisExecutor(n_workers=2, backend="process",
                                 transfer="shm").run(hypotheses, scorer="CorrMax")
        assert shm.transfer == "shm"
        thread = HypothesisExecutor(n_workers=2).run(hypotheses,
                                                     scorer="CorrMax")
        assert thread.transfer is None

    def test_degenerate_sequential_run_reports_no_transfer(self, rng):
        """n_workers=1 takes the in-line loop: no transfer mechanism ran,
        so the report must not claim one."""
        hypotheses = _make_hypotheses(rng, n_families=3)
        report = HypothesisExecutor(n_workers=1, backend="process",
                                    transfer="shm").run(hypotheses,
                                                        scorer="CorrMax")
        assert report.transfer is None

    def test_shm_moves_fewer_bytes_than_pickle(self, rng):
        hypotheses = _make_hypotheses(rng)
        accountings = {}
        for transfer in ("pickle", "shm"):
            report = HypothesisExecutor(
                n_workers=2, backend="process", transfer=transfer,
                measure_serialization=True,
            ).run(hypotheses, scorer="CorrMax")
            accountings[transfer] = report.accounting
        assert accountings["shm"].transfer == "shm"
        assert accountings["pickle"].transfer == "pickle"
        # Y is moved once per group under shm, once per hypothesis
        # under pickle.
        assert (accountings["shm"].bytes_moved
                < accountings["pickle"].bytes_moved)

    def test_invalid_transfer_rejected(self):
        with pytest.raises(ValueError):
            HypothesisExecutor(transfer="grpc")
