"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_explain_args(self):
        args = build_parser().parse_args(
            ["explain", "5.1", "--scorer", "L2", "--top", "5"])
        assert args.scenario == "5.1"
        assert args.scorer == "L2"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explain", "9.9"])


class TestCommands:
    def test_scorers_lists_registry(self, capsys):
        assert main(["scorers"]) == 0
        out = capsys.readouterr().out
        assert "l2-p50" in out

    def test_scenarios_lists_builtins(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "5.1" in out and "5.4" in out

    def test_explain_runs_ranking(self, capsys):
        assert main(["explain", "fig14", "--scorer", "CorrMax",
                     "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "rank" in out
        assert "cpu_temperature" in out

    def test_explain_with_condition_none(self, capsys):
        assert main(["explain", "fig14", "--scorer", "CorrMax",
                     "--condition", "none"]) == 0

    def test_sql_query(self, capsys):
        assert main(["sql", "fig14",
                     "SELECT metric_name, COUNT(*) c FROM tsdb "
                     "GROUP BY metric_name ORDER BY metric_name "
                     "LIMIT 3"]) == 0
        out = capsys.readouterr().out
        assert "background_0" in out

    def test_sql_error_reported(self, capsys):
        assert main(["sql", "fig14", "SELEKT broken"]) == 1
        err = capsys.readouterr().err
        assert "SQL error" in err

    def test_table6_small(self, capsys):
        assert main(["table6", "--scale", "0.15", "--samples", "120",
                     "--scorers", "CorrMax", "L2"]) == 0
        out = capsys.readouterr().out
        assert "Harmonic mean" in out
        assert "incident-11" in out
