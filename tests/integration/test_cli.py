"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, resolve_exec_args


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_explain_args(self):
        args = build_parser().parse_args(
            ["explain", "5.1", "--scorer", "L2", "--top", "5"])
        assert args.scenario == "5.1"
        assert args.scorer == "L2"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explain", "9.9"])

    def test_invalid_backend_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explain", "5.1",
                                       "--backend", "spark"])

    def test_invalid_transfer_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explain", "5.1",
                                       "--backend", "process",
                                       "--transfer", "grpc"])

    def test_nonpositive_workers_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explain", "5.1", "--workers", "0"])

    def test_transfer_and_lags_parse(self):
        args = build_parser().parse_args(
            ["explain", "5.1", "--backend", "process", "--transfer",
             "pickle", "--lags", "0", "1", "2"])
        assert args.transfer == "pickle"
        assert args.lags == [0, 1, 2]

    def test_replay_defaults(self):
        args = build_parser().parse_args(["replay"])
        assert args.matrix == "smoke"
        assert args.scorers == ["CorrMax", "L2", "L2-P50"]
        assert args.ks == [1, 3, 5, 10]
        assert args.json is None

    def test_replay_rejects_unknown_matrix(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay", "--matrix", "giant"])

    def test_replay_rejects_nonpositive_k(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay", "--ks", "0"])


class TestResolveExecArgs:
    def test_defaults(self):
        n_workers, transfer, warnings = resolve_exec_args(None, None, None)
        assert n_workers == 4
        assert transfer == "shm"
        assert warnings == []

    def test_workers_warn_under_batch(self):
        _, _, warnings = resolve_exec_args("batch", 8, None)
        assert len(warnings) == 1
        assert "--workers" in warnings[0] and "batch" in warnings[0]

    def test_workers_warn_without_backend(self):
        _, _, warnings = resolve_exec_args(None, 8, None)
        assert len(warnings) == 1
        assert "--workers" in warnings[0]

    def test_workers_used_by_pools(self):
        for backend in ("thread", "process"):
            n_workers, _, warnings = resolve_exec_args(backend, 8, None)
            assert n_workers == 8
            assert warnings == []

    def test_transfer_warn_for_non_process_backends(self):
        for backend in (None, "thread", "batch"):
            _, transfer, warnings = resolve_exec_args(backend, None, "shm")
            assert transfer == "shm"
            assert any("--transfer" in w for w in warnings)

    def test_transfer_used_by_process(self):
        _, transfer, warnings = resolve_exec_args("process", None, "pickle")
        assert transfer == "pickle"
        assert warnings == []

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            resolve_exec_args("thread", 0, None)


class TestCommands:
    def test_scorers_lists_registry(self, capsys):
        assert main(["scorers"]) == 0
        out = capsys.readouterr().out
        assert "l2-p50" in out

    def test_scenarios_lists_builtins(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "5.1" in out and "5.4" in out

    def test_explain_runs_ranking(self, capsys):
        assert main(["explain", "fig14", "--scorer", "CorrMax",
                     "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "rank" in out
        assert "cpu_temperature" in out

    def test_explain_with_condition_none(self, capsys):
        assert main(["explain", "fig14", "--scorer", "CorrMax",
                     "--condition", "none"]) == 0

    def test_explain_process_shm_backend(self, capsys):
        assert main(["explain", "fig14", "--scorer", "CorrMax",
                     "--backend", "process", "--transfer", "shm",
                     "--workers", "2", "--top", "5"]) == 0
        captured = capsys.readouterr()
        assert "rank" in captured.out
        assert "warning" not in captured.err

    def test_explain_warns_on_ignored_workers(self, capsys):
        assert main(["explain", "fig14", "--scorer", "CorrMax",
                     "--backend", "batch", "--workers", "8",
                     "--top", "5"]) == 0
        captured = capsys.readouterr()
        assert "warning" in captured.err and "--workers" in captured.err

    def test_explain_with_lags(self, capsys):
        assert main(["explain", "fig14", "--scorer", "L2",
                     "--lags", "0", "1", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "L2-lag1" in out

    def test_sql_query(self, capsys):
        assert main(["sql", "fig14",
                     "SELECT metric_name, COUNT(*) c FROM tsdb "
                     "GROUP BY metric_name ORDER BY metric_name "
                     "LIMIT 3"]) == 0
        out = capsys.readouterr().out
        assert "background_0" in out

    def test_sql_error_reported(self, capsys):
        assert main(["sql", "fig14", "SELEKT broken"]) == 1
        err = capsys.readouterr().err
        assert "SQL error" in err

    def test_replay_smoke_prints_scorecard(self, capsys):
        assert main(["replay", "--matrix", "smoke",
                     "--scorers", "CorrMax", "--ks", "3"]) == 0
        out = capsys.readouterr().out
        assert "Incident matrix: smoke (5 scenarios x 1 scorers)" in out
        assert "slow_burn/base#0" in out
        assert "Mean recall@3" in out

    def test_replay_json_to_stdout(self, capsys):
        import json

        assert main(["replay", "--matrix", "smoke",
                     "--scorers", "L2", "--ks", "1", "3",
                     "--json", "-"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["matrix"] == "smoke"
        assert len(doc["cells"]) == 5

    def test_replay_json_to_file(self, tmp_path, capsys):
        import json

        path = tmp_path / "scorecard.json"
        assert main(["replay", "--matrix", "smoke", "--scorers", "CorrMax",
                     "--ks", "3", "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"scorecard written to {path}" in out
        doc = json.loads(path.read_text())
        assert doc["scorers"] == ["CorrMax"]

    def test_table6_small(self, capsys):
        assert main(["table6", "--scale", "0.15", "--samples", "120",
                     "--scorers", "CorrMax", "L2"]) == 0
        out = capsys.readouterr().out
        assert "Harmonic mean" in out
        assert "incident-11" in out
