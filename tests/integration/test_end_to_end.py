"""End-to-end integration: tsdb -> SQL -> families -> ranking -> report.

These tests stitch every subsystem together the way the paper's Figure 4
pipeline does, on generated incidents with known answers.
"""

import numpy as np
import pytest

from repro.core.engine import ExplainItSession
from repro.core.pipeline import DeclarativePipeline
from repro.engine_exec import HypothesisExecutor
from repro.sql import Database
from repro.tsdb.adapter import register_store
from repro.workloads.scenarios import fault_injection_scenario


@pytest.fixture(scope="module")
def scenario():
    return fault_injection_scenario(seed=1)


class TestSqlDrivenWorkflow:
    """The full declarative path of Appendix C on a simulated incident."""

    def test_listing_style_pipeline(self, scenario):
        db = Database()
        register_store(db, scenario.store)
        pipeline = DeclarativePipeline(db)
        pipeline.add_feature_queries(["""
            SELECT timestamp, metric_name, AVG(value) AS v
            FROM tsdb
            WHERE metric_name IN
                ('tcp_retransmits', 'disk_write_latency', 'disk_io',
                 'cpu_util', 'namenode_rpc_latency')
            GROUP BY timestamp, metric_name
            ORDER BY timestamp ASC
        """])
        pipeline.set_target_query("""
            SELECT timestamp, metric_name, AVG(value) AS runtime_sec
            FROM tsdb
            WHERE metric_name = 'pipeline_runtime'
            GROUP BY timestamp, metric_name
            ORDER BY timestamp ASC
        """)
        score_table = pipeline.run(scorer="L2")
        ranking = [r.family for r in score_table.results]
        # The injected fault's signature families lead the ranking.
        assert set(ranking[:2]) <= {"tcp_retransmits",
                                    "disk_write_latency",
                                    "namenode_rpc_latency", "disk_io"}
        # And the Score Table answers SQL (stage 3).
        top = db.sql("SELECT family, score FROM score "
                     "WHERE significant_bh = TRUE ORDER BY rank LIMIT 1")
        assert len(top) == 1

    def test_sql_drilldown_on_tags(self, scenario):
        """Group by host instead of metric name (the §3.2 alternative)."""
        session = ExplainItSession(scenario.store, group_by="tag:host")
        session.set_target("NULL")  # pipelines have no host tag
        # Using tag grouping, the target family is the pipeline metrics
        # (host=NULL); datanode hosts should explain it.
        table = session.explain(scorer="CorrMax")
        assert table.n_hypotheses > 0
        top = table.results[0].family
        assert top.startswith("datanode") or top.startswith("namenode")


class TestParallelEquivalence:
    def test_executor_agrees_with_session(self, scenario):
        session = ExplainItSession(scenario.store)
        session.set_target("pipeline_runtime")
        serial_table = session.explain(scorer="CorrMax")
        from repro.core.hypothesis import generate_hypotheses
        hyps = generate_hypotheses(session.families(), "pipeline_runtime")
        report = HypothesisExecutor(n_workers=4).run(hyps,
                                                     scorer="CorrMax")
        assert [r.family for r in report.score_table.results] == \
            [r.family for r in serial_table.results]


class TestCaseStudyWorkflowLoop:
    def test_iterative_narrowing(self, scenario):
        """Algorithm 1's loop: global search, then drill down."""
        session = scenario.session()
        first = session.explain(scorer="CorrMax")
        suspects = [r.family for r in first.top(6)
                    if r.family in scenario.causes]
        assert suspects, "expected a cause in the global top-6"
        second = session.drill_down(suspects, scorer="L2")
        assert second.results[0].family in scenario.causes
        assert len(session.history) == 2

    def test_scores_stable_across_scorers_for_strong_cause(self, scenario):
        session = scenario.session()
        ranks = {}
        for scorer in ("CorrMax", "L2", "L2-P50"):
            table = session.explain(scorer=scorer)
            ranks[scorer] = min(
                (table.rank_of(c) for c in scenario.causes
                 if table.rank_of(c) is not None), default=None)
        assert all(rank is not None and rank <= 8
                   for rank in ranks.values()), ranks
