"""Integration tests for the workflow extras: auto event windows,
diagnostics on real scenarios, and the temporal baselines side by side."""

import numpy as np
import pytest

from repro.workloads.scenarios import fault_injection_scenario


@pytest.fixture(scope="module")
def scenario():
    return fault_injection_scenario(seed=2)


class TestAutoEventWindow:
    def test_session_finds_the_fault_window(self, scenario):
        session = scenario.session()
        session.set_time_ranges(0, 288)
        event = session.suggest_event_window(window=40, threshold=3.5)
        assert event is not None
        start, end = scenario.fault_window
        # The detected window must overlap the injected fault window.
        assert event.start < end and event.end > start
        # And it is installed as the explain range for event_lift.
        assert session.event_lift("pipeline_runtime") > 1.0

    def test_no_event_on_healthy_target(self, rng):
        from repro.core.engine import ExplainItSession
        from repro.tsdb import SeriesId, TimeSeriesStore
        store = TimeSeriesStore()
        store.insert_array(SeriesId.make("kpi"), np.arange(300),
                           rng.standard_normal(300))
        session = ExplainItSession(store)
        session.set_target("kpi")
        assert session.suggest_event_window(threshold=6.0) is None


class TestDiagnosticsOnScenario:
    def test_top_causes_pass_event_residual_check(self, scenario):
        """Unlike Figure 14's temperature family, the real causes also
        explain the event window."""
        from repro.core.hypothesis import generate_hypotheses
        from repro.core.ranking import rank_families
        from repro.core.report import DiagnosticReport
        families = scenario.families()
        hypotheses = generate_hypotheses(families, scenario.target)
        table = rank_families(hypotheses, scorer="CorrMax")
        report = DiagnosticReport.for_ranking(
            hypotheses, table, k=5, event_window=scenario.fault_window)
        cause_diagnostics = [d for d in report.diagnostics
                             if d.family in scenario.causes]
        assert cause_diagnostics
        for diag in cause_diagnostics:
            assert diag.event_residual_ratio() < 3.0, diag.family


class TestTemporalBaselines:
    def test_granger_confirms_runtime_to_latency(self, scenario):
        """The SCM's lagged runtime->latency edge is visible to Granger,
        demonstrating the temporal-precedence baseline on engine data."""
        from repro.causal import granger_test
        from repro.tsdb import SeriesId
        _, runtime = scenario.store.arrays(SeriesId.make(
            "pipeline_runtime", {"pipeline_name": "pipeline-1"}))
        _, latency = scenario.store.arrays(SeriesId.make(
            "pipeline_latency", {"pipeline_name": "pipeline-1"}))
        assert granger_test(runtime, latency, order=2).significant()

    def test_lagged_scorer_on_latency_family(self, scenario):
        """pipeline_latency lags runtime by one step; lag-augmented
        scoring must not do worse than instantaneous scoring."""
        from repro.scoring import L2Scorer, LaggedScorer
        families = scenario.families()
        x = families["pipeline_runtime"].matrix
        y = families["pipeline_latency"].matrix
        plain = L2Scorer().score(x, y)
        lagged = LaggedScorer(lags=(0, 1)).score(x, y)
        assert lagged >= plain - 0.05
        assert lagged > 0.3
