"""Property-based tests on the estimators (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.linmodel import LinearRegression, Ridge, StandardScaler
from repro.linmodel.metrics import r2_score

matrix_strategy = arrays(
    np.float64, shape=st.tuples(st.integers(12, 40), st.integers(1, 5)),
    elements=st.floats(-50, 50, allow_nan=False, allow_infinity=False,
                       allow_subnormal=False),
)


def _well_conditioned(x: np.ndarray, seed: int) -> np.ndarray:
    """Add tiny jitter so hypothesis' adversarial constant/collinear
    matrices stay numerically well-posed (the properties under test are
    statements about regression behaviour, not about float denormals)."""
    jitter_rng = np.random.default_rng(seed ^ 0x5EED)
    return x + 1e-3 * jitter_rng.standard_normal(x.shape)


class TestOlsProperties:
    @given(matrix_strategy, st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_ols_r2_at_least_zero_in_sample(self, x, seed):
        """With an intercept, OLS never fits worse than the mean."""
        x = _well_conditioned(x, seed)
        rng = np.random.default_rng(seed)
        y = rng.standard_normal(x.shape[0])
        model = LinearRegression().fit(x, y)
        assert model.score(x, y) >= -1e-9

    @given(matrix_strategy, st.integers(0, 2**32 - 1),
           st.floats(0.5, 100.0))
    @settings(max_examples=25, deadline=None)
    def test_ols_scale_equivariance(self, x, seed, scale):
        """Scaling Y scales predictions: pred(c*y) = c*pred(y)."""
        x = _well_conditioned(x, seed)
        rng = np.random.default_rng(seed)
        y = rng.standard_normal(x.shape[0])
        p1 = LinearRegression().fit(x, y).predict(x)
        p2 = LinearRegression().fit(x, scale * y).predict(x)
        # Tolerance scales with the target: near-singular designs make the
        # min-norm solution numerically delicate, not wrong.
        tol = 1e-4 * max(1.0, scale)
        assert np.allclose(p2, scale * p1, rtol=1e-4, atol=tol)


class TestRidgeProperties:
    @given(matrix_strategy, st.integers(0, 2**32 - 1),
           st.floats(0.0, 1e4))
    @settings(max_examples=25, deadline=None)
    def test_ridge_in_sample_r2_no_better_than_ols(self, x, seed, alpha):
        x = _well_conditioned(x, seed)
        rng = np.random.default_rng(seed)
        y = rng.standard_normal(x.shape[0])
        ols_r2 = LinearRegression().fit(x, y).score(x, y)
        ridge_r2 = Ridge(alpha=alpha).fit(x, y).score(x, y)
        assert ridge_r2 <= ols_r2 + 1e-8

    @given(matrix_strategy, st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_translation_invariance_of_coefficients(self, x, seed):
        """Shifting X only moves the intercept, not the slopes."""
        x = _well_conditioned(x, seed)
        rng = np.random.default_rng(seed)
        y = rng.standard_normal(x.shape[0])
        m1 = Ridge(alpha=1.0).fit(x, y)
        m2 = Ridge(alpha=1.0).fit(x + 13.0, y)
        assert np.allclose(m1.coef_, m2.coef_, atol=1e-6)


class TestScalerProperties:
    @given(matrix_strategy)
    @settings(max_examples=25, deadline=None)
    def test_round_trip(self, x):
        scaler = StandardScaler().fit(x)
        back = scaler.inverse_transform(scaler.transform(x))
        assert np.allclose(back, x, atol=1e-8)

    @given(matrix_strategy)
    @settings(max_examples=25, deadline=None)
    def test_idempotent_statistics(self, x):
        out = StandardScaler().fit_transform(x)
        again = StandardScaler().fit_transform(out)
        assert np.allclose(out, again, atol=1e-8)


class TestR2Properties:
    @given(st.integers(5, 60), st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_r2_upper_bound(self, n, seed):
        rng = np.random.default_rng(seed)
        y = rng.standard_normal(n)
        pred = rng.standard_normal(n)
        assert r2_score(y, pred) <= 1.0
