"""Unit tests for Lasso coordinate descent."""

import numpy as np
import pytest

from repro.linmodel import Lasso, LinearRegression


class TestLasso:
    def test_zero_alpha_approximates_ols(self, rng):
        x = rng.standard_normal((150, 3))
        y = x @ np.array([1.0, -0.5, 2.0]) + 0.1 * rng.standard_normal(150)
        ols = LinearRegression().fit(x, y)
        lasso = Lasso(alpha=0.0, max_iter=2000, tol=1e-10).fit(x, y)
        assert lasso.coef_ == pytest.approx(ols.coef_, abs=1e-4)

    def test_sparsity_increases_with_alpha(self, rng):
        x = rng.standard_normal((100, 10))
        y = x[:, 0] * 2.0 + 0.5 * rng.standard_normal(100)
        weak = Lasso(alpha=0.01).fit(x, y)
        strong = Lasso(alpha=0.5).fit(x, y)
        assert strong.sparsity() >= weak.sparsity()

    def test_selects_true_support(self, rng):
        x = rng.standard_normal((300, 8))
        y = 3.0 * x[:, 2] + 0.2 * rng.standard_normal(300)
        model = Lasso(alpha=0.1).fit(x, y)
        coef = model.coef_[:, 0]
        assert abs(coef[2]) > 1.0
        others = np.delete(np.abs(coef), 2)
        assert others.max() < 0.1

    def test_huge_alpha_zeroes_everything(self, rng):
        x = rng.standard_normal((50, 5))
        y = x @ np.ones(5)
        model = Lasso(alpha=1e6).fit(x, y)
        assert model.sparsity() == 1.0
        # All-zero coefficients predict the mean.
        assert model.predict(x) == pytest.approx(np.full(50, y.mean()))

    def test_multi_output(self, rng):
        x = rng.standard_normal((60, 4))
        y = rng.standard_normal((60, 2))
        model = Lasso(alpha=0.1).fit(x, y)
        assert model.coef_.shape == (4, 2)

    def test_convergence_reported(self, rng):
        x = rng.standard_normal((50, 3))
        y = x @ np.ones(3)
        model = Lasso(alpha=0.01).fit(x, y)
        assert 1 <= model.n_iter_ <= model.max_iter

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            Lasso(alpha=-0.1)

    def test_constant_feature_ignored(self, rng):
        x = np.column_stack([np.ones(80), rng.standard_normal(80)])
        y = 2.0 * x[:, 1]
        model = Lasso(alpha=0.01).fit(x, y)
        assert model.coef_[0, 0] == 0.0

    def test_score_reasonable(self, rng):
        x = rng.standard_normal((200, 5))
        y = x @ np.array([1, 0, 0, 0, 0.5]) + 0.3 * rng.standard_normal(200)
        assert Lasso(alpha=0.05).fit(x, y).score(x, y) > 0.8
