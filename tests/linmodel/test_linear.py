"""Unit tests for OLS."""

import numpy as np
import pytest

from repro.linmodel import LinearRegression
from repro.linmodel.linear import NotFittedError


class TestFit:
    def test_recovers_coefficients(self, rng):
        x = rng.standard_normal((200, 3))
        beta = np.array([1.5, -2.0, 0.5])
        y = x @ beta + 3.0
        model = LinearRegression().fit(x, y)
        assert model.coef_[:, 0] == pytest.approx(beta, abs=1e-8)
        assert model.intercept_[0] == pytest.approx(3.0, abs=1e-8)

    def test_multi_output(self, rng):
        x = rng.standard_normal((100, 2))
        betas = np.array([[1.0, 2.0], [0.5, -1.0]])
        y = x @ betas
        model = LinearRegression().fit(x, y)
        assert model.coef_ == pytest.approx(betas, abs=1e-8)
        assert model.predict(x).shape == (100, 2)

    def test_1d_target_round_trip(self, rng):
        x = rng.standard_normal((50, 2))
        y = x[:, 0] * 2.0
        model = LinearRegression().fit(x, y)
        assert model.predict(x).ndim == 1

    def test_no_intercept(self, rng):
        x = rng.standard_normal((100, 1))
        y = 2.0 * x[:, 0] + 5.0
        model = LinearRegression(fit_intercept=False).fit(x, y)
        assert model.intercept_[0] == 0.0

    def test_perfect_fit_score(self, rng):
        x = rng.standard_normal((60, 2))
        y = x @ np.array([1.0, 1.0])
        assert LinearRegression().fit(x, y).score(x, y) == pytest.approx(1.0)

    def test_underdetermined_uses_min_norm(self, rng):
        # p > n: lstsq returns the minimum-norm interpolating solution.
        x = rng.standard_normal((10, 50))
        y = rng.standard_normal(10)
        model = LinearRegression().fit(x, y)
        assert model.score(x, y) == pytest.approx(1.0, abs=1e-6)


class TestValidation:
    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            LinearRegression().predict(np.zeros((3, 1)))

    def test_row_mismatch(self, rng):
        with pytest.raises(ValueError):
            LinearRegression().fit(rng.standard_normal((10, 2)),
                                   rng.standard_normal(9))

    def test_nan_rejected(self):
        x = np.array([[1.0], [np.nan]])
        with pytest.raises(ValueError):
            LinearRegression().fit(x, np.array([1.0, 2.0]))

    def test_zero_samples_rejected(self):
        with pytest.raises(ValueError):
            LinearRegression().fit(np.zeros((0, 1)), np.zeros(0))

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            LinearRegression().fit(np.zeros((2, 2, 2)), np.zeros(2))


class TestResiduals:
    def test_residuals_orthogonal_to_design(self, rng):
        x = rng.standard_normal((100, 3))
        y = rng.standard_normal(100)
        model = LinearRegression().fit(x, y)
        res = model.residuals(x, y)
        # OLS residuals are orthogonal to the (centred) design columns.
        xc = x - x.mean(axis=0)
        assert np.abs(xc.T @ res).max() < 1e-8

    def test_residuals_sum_to_zero_with_intercept(self, rng):
        x = rng.standard_normal((80, 2))
        y = rng.standard_normal(80)
        res = LinearRegression().fit(x, y).residuals(x, y)
        assert abs(res.sum()) < 1e-8
