"""Unit tests for Ridge regression and the SVD penalty path."""

import numpy as np
import pytest

from repro.linmodel import LinearRegression, Ridge, ridge_path
from repro.linmodel.ridge import RidgeSvdFactor


class TestRidge:
    def test_zero_alpha_matches_ols(self, rng):
        x = rng.standard_normal((100, 4))
        y = x @ np.array([1.0, -1.0, 2.0, 0.0]) + rng.standard_normal(100)
        ols = LinearRegression().fit(x, y)
        ridge = Ridge(alpha=0.0).fit(x, y)
        assert ridge.coef_ == pytest.approx(ols.coef_, abs=1e-8)

    def test_shrinkage_monotone_in_alpha(self, rng):
        x = rng.standard_normal((100, 4))
        y = x @ np.ones(4) + rng.standard_normal(100)
        norms = []
        for alpha in (0.0, 1.0, 100.0, 10000.0):
            model = Ridge(alpha=alpha).fit(x, y)
            norms.append(float(np.linalg.norm(model.coef_)))
        assert norms == sorted(norms, reverse=True)

    def test_huge_alpha_predicts_mean(self, rng):
        x = rng.standard_normal((100, 3))
        y = x @ np.ones(3) + 5.0
        model = Ridge(alpha=1e12).fit(x, y)
        assert model.predict(x) == pytest.approx(np.full(100, y.mean()),
                                                 abs=1e-3)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            Ridge(alpha=-1.0)

    def test_wide_matrix_supported(self, rng):
        # p > n is the regime Appendix A's ridge analysis covers.
        x = rng.standard_normal((30, 100))
        y = rng.standard_normal(30)
        model = Ridge(alpha=1.0).fit(x, y)
        assert model.predict(x).shape == (30,)

    def test_multi_output(self, rng):
        x = rng.standard_normal((50, 3))
        y = rng.standard_normal((50, 4))
        model = Ridge(alpha=1.0).fit(x, y)
        assert model.coef_.shape == (3, 4)
        assert model.predict(x).shape == (50, 4)

    def test_ridge_normal_equation_identity(self, rng):
        """SVD solution equals (XᵀX + λI)⁻¹ XᵀY on centred data."""
        x = rng.standard_normal((60, 5))
        y = rng.standard_normal(60)
        alpha = 3.7
        model = Ridge(alpha=alpha).fit(x, y)
        xc = x - x.mean(axis=0)
        yc = y - y.mean()
        direct = np.linalg.solve(xc.T @ xc + alpha * np.eye(5), xc.T @ yc)
        assert model.coef_[:, 0] == pytest.approx(direct, abs=1e-8)


class TestRidgePath:
    def test_path_matches_individual_fits(self, rng):
        x = rng.standard_normal((80, 6))
        y = rng.standard_normal(80)
        alphas = (0.1, 10.0, 1000.0)
        path = ridge_path(x, y, alphas)
        for alpha in alphas:
            individual = Ridge(alpha=alpha).fit(x, y)
            assert path[alpha].coef_ == pytest.approx(individual.coef_,
                                                      abs=1e-10)

    def test_factor_reuse(self, rng):
        x = rng.standard_normal((50, 4))
        y = rng.standard_normal((50, 2))
        factor = RidgeSvdFactor(x, y)
        coef1, _ = factor.solve(1.0)
        coef2, _ = factor.solve(1.0)
        assert np.array_equal(coef1, coef2)

    def test_path_preserves_1d_prediction_shape(self, rng):
        x = rng.standard_normal((40, 3))
        y = rng.standard_normal(40)
        path = ridge_path(x, y, (1.0,))
        assert path[1.0].predict(x).ndim == 1
