"""Unit tests for time-series-aware cross-validation splitters."""

import numpy as np
import pytest

from repro.linmodel import TimeSeriesKFold, train_test_split_time
from repro.linmodel.crossval import ShuffledKFold


class TestTimeSeriesKFold:
    def test_folds_cover_everything_once(self):
        splitter = TimeSeriesKFold(n_splits=5)
        seen = []
        for train, valid in splitter.split(103):
            seen.extend(valid.tolist())
            assert set(train) | set(valid) == set(range(103))
            assert not set(train) & set(valid)
        assert sorted(seen) == list(range(103))

    def test_validation_blocks_are_contiguous(self):
        """The paper's §3.5 requirement: no time-range overlap."""
        for _, valid in TimeSeriesKFold(4).split(50):
            assert np.array_equal(valid, np.arange(valid[0], valid[-1] + 1))

    def test_uneven_fold_sizes(self):
        sizes = [len(v) for _, v in TimeSeriesKFold(3).split(10)]
        assert sizes == [4, 3, 3]

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(TimeSeriesKFold(5).split(3))

    def test_min_splits(self):
        with pytest.raises(ValueError):
            TimeSeriesKFold(n_splits=1)


class TestShuffledKFold:
    def test_partition_property(self):
        seen = []
        for train, valid in ShuffledKFold(4, seed=1).split(40):
            seen.extend(valid.tolist())
            assert not set(train) & set(valid)
        assert sorted(seen) == list(range(40))

    def test_deterministic_under_seed(self):
        a = [v.tolist() for _, v in ShuffledKFold(3, seed=7).split(30)]
        b = [v.tolist() for _, v in ShuffledKFold(3, seed=7).split(30)]
        assert a == b

    def test_actually_shuffles(self):
        contiguous = all(
            np.array_equal(v, np.arange(v.min(), v.max() + 1))
            for _, v in ShuffledKFold(4, seed=0).split(40)
        )
        assert not contiguous


class TestTrainTestSplitTime:
    def test_chronological(self):
        train, test = train_test_split_time(100, 0.25)
        assert train.tolist() == list(range(75))
        assert test.tolist() == list(range(75, 100))

    def test_extremes_clamped(self):
        train, test = train_test_split_time(2, 0.99)
        assert len(train) >= 1 and len(test) >= 1

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            train_test_split_time(10, 1.5)
