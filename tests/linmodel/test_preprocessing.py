"""Unit tests for standardisation and interpolation."""

import numpy as np
import pytest

from repro.linmodel import StandardScaler, interpolate_missing


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        x = rng.standard_normal((100, 3)) * 5.0 + 10.0
        out = StandardScaler().fit_transform(x)
        assert out.mean(axis=0) == pytest.approx(np.zeros(3), abs=1e-10)
        assert out.std(axis=0) == pytest.approx(np.ones(3), abs=1e-10)

    def test_constant_column_safe(self):
        x = np.column_stack([np.full(10, 3.0), np.arange(10.0)])
        out = StandardScaler().fit_transform(x)
        assert np.all(out[:, 0] == 0.0)
        assert np.isfinite(out).all()

    def test_inverse_round_trip(self, rng):
        x = rng.standard_normal((50, 2)) * 3.0 + 7.0
        scaler = StandardScaler().fit(x)
        assert scaler.inverse_transform(scaler.transform(x)) == \
            pytest.approx(x)

    def test_1d_support(self, rng):
        x = rng.standard_normal(30) * 2.0
        out = StandardScaler().fit_transform(x)
        assert out.ndim == 1

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros(3))


class TestInterpolateMissing:
    def test_no_nans_unchanged(self):
        x = np.arange(6.0).reshape(3, 2)
        assert np.array_equal(interpolate_missing(x), x)

    def test_interior_nan_takes_nearest(self):
        col = np.array([1.0, np.nan, np.nan, np.nan, 9.0])
        out = interpolate_missing(col)
        # positions 1,2 closer/tied to index 0; position 3 closer to 4
        assert out.tolist() == [1.0, 1.0, 1.0, 9.0, 9.0]

    def test_edge_nans_extend(self):
        col = np.array([np.nan, 5.0, np.nan])
        assert interpolate_missing(col).tolist() == [5.0, 5.0, 5.0]

    def test_all_nan_column_becomes_zero(self):
        x = np.column_stack([np.full(4, np.nan), np.arange(4.0)])
        out = interpolate_missing(x)
        assert np.all(out[:, 0] == 0.0)
        assert np.array_equal(out[:, 1], np.arange(4.0))

    def test_input_not_mutated(self):
        x = np.array([[np.nan], [1.0]])
        interpolate_missing(x)
        assert np.isnan(x[0, 0])

    def test_tie_goes_to_earlier_neighbour(self):
        col = np.array([2.0, np.nan, 8.0])
        assert interpolate_missing(col)[1] == 2.0
