"""Unit tests for regression metrics."""

import numpy as np
import pytest

from repro.linmodel import explained_variance, mse, r2_score
from repro.linmodel.metrics import adjusted_r2


class TestR2:
    def test_perfect_prediction(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == 1.0

    def test_mean_prediction_scores_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        pred = np.full(3, 2.0)
        assert r2_score(y, pred) == pytest.approx(0.0)

    def test_worse_than_mean_is_negative(self):
        y = np.array([1.0, 2.0, 3.0])
        pred = np.array([3.0, 2.0, 1.0])
        assert r2_score(y, pred) < 0.0

    def test_constant_target(self):
        y = np.full(5, 4.0)
        assert r2_score(y, y) == 1.0
        assert r2_score(y, y + 1.0) == 0.0

    def test_training_baseline_mean(self):
        y = np.array([10.0, 12.0])
        pred = np.array([10.0, 12.0])
        # with a far-off baseline mean, TSS inflates but RSS is 0
        assert r2_score(y, pred, baseline_mean=np.array([0.0])) == 1.0

    def test_multi_output_variance_weighted(self):
        y = np.column_stack([np.arange(10.0), np.arange(10.0) * 10.0])
        pred = y.copy()
        pred[:, 0] = y[:, 0].mean()   # ruin the low-variance output only
        # Pooled RSS/TSS: the large-variance output dominates.
        assert r2_score(y, pred) > 0.97

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            r2_score(np.zeros(3), np.zeros(4))


class TestMse:
    def test_basic(self):
        assert mse(np.array([1.0, 2.0]), np.array([2.0, 4.0])) == 2.5

    def test_zero_for_perfect(self):
        y = np.arange(5.0)
        assert mse(y, y) == 0.0


class TestExplainedVariance:
    def test_offset_insensitive(self):
        y = np.arange(10.0)
        assert explained_variance(y, y + 100.0) == pytest.approx(1.0)

    def test_r2_penalises_offset(self):
        y = np.arange(10.0)
        assert r2_score(y, y + 100.0) < 0.0


class TestAdjustedR2:
    def test_wherry_formula(self):
        # r2=0.5, n=101, p=51 -> 1 - 0.5 * 100/50 = 0
        assert adjusted_r2(0.5, 101, 51) == pytest.approx(0.0)

    def test_no_predictors_noop_like(self):
        assert adjusted_r2(0.5, 100, 1) == pytest.approx(0.5, abs=0.01)

    def test_p_at_least_n_clamped(self):
        assert adjusted_r2(0.99, 10, 10) == 0.0
        assert adjusted_r2(0.99, 10, 50) == 0.0

    def test_adjustment_reduces_score(self):
        assert adjusted_r2(0.5, 50, 20) < 0.5
