"""Unit tests for grid-search CV and out-of-fold scoring."""

import numpy as np
import pytest

from repro.linmodel import GridSearchCV, cross_val_r2


class TestCrossValR2:
    def test_strong_signal_scores_high(self, rng):
        x = rng.standard_normal((200, 3))
        y = x @ np.array([1.0, 2.0, -1.0]) + 0.1 * rng.standard_normal(200)
        result = cross_val_r2(x, y)
        assert result.best_score > 0.9

    def test_pure_noise_scores_near_zero(self, rng):
        x = rng.standard_normal((200, 30))
        y = rng.standard_normal(200)
        result = cross_val_r2(x, y)
        assert result.best_score < 0.1

    def test_noise_prefers_heavy_penalty(self, rng):
        """Figure 13's behaviour: CV selects large λ under the NULL."""
        x = rng.standard_normal((150, 50))
        y = rng.standard_normal(150)
        result = cross_val_r2(x, y, alphas=(0.1, 10.0, 1000.0))
        assert result.best_alpha >= 10.0

    def test_scores_clipped_at_zero(self, rng):
        x = rng.standard_normal((40, 20))
        y = rng.standard_normal(40)
        result = cross_val_r2(x, y)
        assert all(v >= 0.0 for v in result.scores_by_alpha.values())

    def test_result_metadata(self, rng):
        x = rng.standard_normal((50, 4))
        y = rng.standard_normal(50)
        result = cross_val_r2(x, y, alphas=(1.0, 2.0))
        assert result.n_samples == 50
        assert result.n_features == 4
        assert set(result.scores_by_alpha) == {1.0, 2.0}
        assert "best_alpha" in result.as_dict()

    def test_constant_target_scores_zero(self, rng):
        x = rng.standard_normal((60, 2))
        y = np.full(60, 7.0)
        assert cross_val_r2(x, y).best_score == 0.0

    def test_multi_output_target(self, rng):
        x = rng.standard_normal((100, 3))
        y = np.column_stack([x @ np.ones(3), rng.standard_normal(100)])
        result = cross_val_r2(x, y)
        # One explained output + one noise output -> intermediate score.
        assert 0.2 < result.best_score < 0.9


class TestGridSearchCV:
    def test_l2_end_to_end(self, rng):
        x = rng.standard_normal((120, 4))
        y = x @ np.array([2.0, 0.0, 0.0, 1.0]) + 0.2 * rng.standard_normal(120)
        search = GridSearchCV().fit(x, y)
        assert search.best_score_ > 0.8
        assert search.predict(x).shape == (120,)

    def test_l1_end_to_end(self, rng):
        x = rng.standard_normal((120, 4))
        y = 2.0 * x[:, 0] + 0.2 * rng.standard_normal(120)
        search = GridSearchCV(alphas=(0.01, 0.1), penalty="l1").fit(x, y)
        assert search.best_score_ > 0.7

    def test_bad_penalty_rejected(self):
        with pytest.raises(ValueError):
            GridSearchCV(penalty="elastic")

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GridSearchCV().predict(np.zeros((3, 1)))
