"""Unit tests for the interactive session (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.engine import ExplainItSession, TimeRanges
from repro.core.families import FamilyError
from repro.tsdb import SeriesId, TimeSeriesStore


@pytest.fixture
def causal_store(rng):
    """Z -> Y -> X world plus noise families."""
    n = 300
    store = TimeSeriesStore()
    ts = np.arange(n)
    z = 100 + 10 * rng.standard_normal(n)
    y = 0.5 * z + 4 * rng.standard_normal(n)
    x = 0.4 * y + 1.5 * rng.standard_normal(n)
    store.insert_array(SeriesId.make("input_rate"), ts, z)
    store.insert_array(SeriesId.make("runtime"), ts, y)
    store.insert_array(SeriesId.make("disk_latency"), ts, x)
    for i in range(5):
        store.insert_array(SeriesId.make(f"noise_{i}"), ts,
                           rng.standard_normal(n))
    return store


class TestTimeRanges:
    def test_empty_total_range(self):
        with pytest.raises(ValueError):
            TimeRanges(10, 10)

    def test_explain_requires_both_ends(self):
        with pytest.raises(ValueError):
            TimeRanges(0, 100, explain_start=10)

    def test_explain_must_be_inside_total(self):
        with pytest.raises(ValueError):
            TimeRanges(0, 100, explain_start=50, explain_end=150)

    def test_explain_defaults_to_total(self):
        assert TimeRanges(0, 100).explain == (0, 100)


class TestSession:
    def test_explain_ranks_real_dependencies_first(self, causal_store):
        session = ExplainItSession(causal_store)
        session.set_target("runtime")
        table = session.explain(scorer="L2")
        top2 = {r.family for r in table.top(2)}
        assert top2 == {"input_rate", "disk_latency"}

    def test_conditioning_removes_explained_variation(self, causal_store):
        session = ExplainItSession(causal_store)
        session.set_target("runtime")
        unconditioned = session.explain(scorer="L2")
        session.set_condition("input_rate")
        conditioned = session.explain(scorer="L2")
        # input_rate is no longer a hypothesis; disk_latency stays on top.
        assert conditioned.rank_of("input_rate") is None
        assert conditioned.results[0].family == "disk_latency"
        assert unconditioned.rank_of("input_rate") is not None

    def test_search_space_restriction(self, causal_store):
        session = ExplainItSession(causal_store)
        session.set_target("runtime")
        table = session.explain(search=["noise_0", "noise_1"],
                                scorer="CorrMax")
        assert {r.family for r in table.results} == {"noise_0", "noise_1"}

    def test_drill_down_records_history(self, causal_store):
        session = ExplainItSession(causal_store)
        session.set_target("runtime")
        session.explain(scorer="CorrMax")
        session.drill_down(["disk_latency"], scorer="CorrMax")
        assert len(session.history) == 2

    def test_score_table_registered_for_sql(self, causal_store):
        session = ExplainItSession(causal_store)
        session.set_target("runtime")
        session.explain(scorer="CorrMax")
        result = session.db.sql(
            "SELECT family FROM score ORDER BY rank LIMIT 1")
        assert len(result) == 1

    def test_explain_without_target_fails(self, causal_store):
        with pytest.raises(FamilyError):
            ExplainItSession(causal_store).explain()

    def test_time_range_restriction(self, causal_store):
        session = ExplainItSession(causal_store)
        session.set_time_ranges(0, 100)
        session.set_target("runtime")
        table = session.explain(scorer="CorrMax")
        assert session.families()["runtime"].n_samples == 100
        assert table.n_hypotheses == 7

    def test_event_lift_flags_window_anomaly(self, rng):
        n = 200
        store = TimeSeriesStore()
        ts = np.arange(n)
        spiky = rng.standard_normal(n)
        spiky[100:120] += 8.0
        store.insert_array(SeriesId.make("kpi"), ts,
                           rng.standard_normal(n))
        store.insert_array(SeriesId.make("spiky"), ts, spiky)
        session = ExplainItSession(store)
        session.set_time_ranges(0, n, explain_start=100, explain_end=120)
        session.set_target("kpi")
        assert session.event_lift("spiky") > 3.0
        assert session.event_lift("kpi") < 1.5

    def test_pseudocause_conditioning(self, rng):
        n, period = 240, 24
        store = TimeSeriesStore()
        ts = np.arange(n)
        seasonal = 5.0 * np.sin(2 * np.pi * ts / period)
        residual_cause = np.zeros(n)
        residual_cause[150:170] = 4.0
        store.insert_array(SeriesId.make("kpi"), ts,
                           seasonal + residual_cause
                           + 0.2 * rng.standard_normal(n))
        store.insert_array(SeriesId.make("seasonal_service"), ts,
                           seasonal + 0.2 * rng.standard_normal(n))
        store.insert_array(SeriesId.make("residual_service"), ts,
                           residual_cause + 0.2 * rng.standard_normal(n))
        session = ExplainItSession(store)
        session.set_target("kpi")
        session.condition_on_pseudocause(period=period)
        table = session.explain(scorer="L2")
        assert table.results[0].family == "residual_service"
