"""Unit tests for seasonal decomposition and pseudocauses (§3.4)."""

import numpy as np
import pytest

from repro.core.pseudocause import (
    DecompositionError,
    decompose,
    estimate_period,
    moving_average,
    pseudocauses,
)


def seasonal_series(n=240, period=24, amplitude=3.0, trend=0.02,
                    noise=0.2, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return (10.0 + trend * t
            + amplitude * np.sin(2 * np.pi * t / period)
            + noise * rng.standard_normal(n))


class TestMovingAverage:
    def test_constant_series_unchanged(self):
        s = np.full(20, 5.0)
        assert moving_average(s, 5) == pytest.approx(s)

    def test_window_one_is_identity(self):
        s = np.arange(10.0)
        assert np.array_equal(moving_average(s, 1), s)

    def test_smooths_noise(self, rng):
        s = rng.standard_normal(500)
        assert moving_average(s, 25).std() < s.std() / 2

    def test_bad_window(self):
        with pytest.raises(DecompositionError):
            moving_average(np.zeros(5), 0)


class TestDecompose:
    def test_exact_reconstruction(self):
        s = seasonal_series()
        d = decompose(s, 24)
        assert d.reconstruct() == pytest.approx(s, abs=1e-9)

    def test_seasonal_component_recovered(self):
        s = seasonal_series(amplitude=5.0, noise=0.1)
        d = decompose(s, 24)
        expected = 5.0 * np.sin(2 * np.pi * np.arange(240) / 24)
        corr = np.corrcoef(d.seasonal, expected)[0, 1]
        assert corr > 0.98

    def test_trend_component_monotone_for_trendy_series(self):
        s = seasonal_series(trend=0.1, amplitude=1.0, noise=0.05)
        d = decompose(s, 24)
        fitted_slope = np.polyfit(np.arange(240), d.trend, 1)[0]
        assert fitted_slope == pytest.approx(0.1, abs=0.02)

    def test_seasonal_is_zero_mean(self):
        d = decompose(seasonal_series(), 24)
        assert abs(d.seasonal.mean()) < 1e-9

    def test_residual_captures_spike(self):
        s = seasonal_series(noise=0.05)
        s[120] += 20.0
        d = decompose(s, 24)
        assert d.residual[120] > 10.0

    def test_too_short_series(self):
        with pytest.raises(DecompositionError):
            decompose(np.zeros(30), 24)

    def test_bad_period(self):
        with pytest.raises(DecompositionError):
            decompose(np.zeros(100), 1)


class TestEstimatePeriod:
    def test_finds_true_period(self):
        s = seasonal_series(period=24, amplitude=5.0, noise=0.1, trend=0.0)
        assert estimate_period(s) in range(22, 27)

    def test_constant_series_rejected(self):
        with pytest.raises(DecompositionError):
            estimate_period(np.full(100, 2.0))

    def test_too_short(self):
        with pytest.raises(DecompositionError):
            estimate_period(np.zeros(4), max_period=50, min_period=60)


class TestPseudocauses:
    def test_shape(self):
        z = pseudocauses(seasonal_series(), period=24)
        assert z.shape == (240, 2)

    def test_period_estimated_when_missing(self):
        s = seasonal_series(period=24, amplitude=5.0, noise=0.1, trend=0.0)
        z = pseudocauses(s)
        assert z.shape == (240, 2)

    def test_conditioning_on_pseudocause_reveals_residual_cause(self):
        """The Figure 3 experiment: conditioning on Ys exposes Cr."""
        from repro.scoring import L2Scorer
        rng = np.random.default_rng(3)
        n, period = 240, 24
        seasonal = 5.0 * np.sin(2 * np.pi * np.arange(n) / period)
        cr = np.zeros(n)
        cr[100:115] = 4.0                      # residual cause activity
        y = (seasonal + cr + 0.2 * rng.standard_normal(n))[:, None]
        cs_proxy = (seasonal + 0.2 * rng.standard_normal(n))[:, None]
        cr_proxy = (cr + 0.2 * rng.standard_normal(n))[:, None]
        z = pseudocauses(y, period=period)
        scorer = L2Scorer()
        # Unconditioned: the seasonal proxy dominates.
        assert scorer.score(cs_proxy, y) > scorer.score(cr_proxy, y)
        # Conditioned on the pseudocause: Cr wins, Cs is blocked.
        assert scorer.score(cr_proxy, y, z) > scorer.score(cs_proxy, y, z)
        assert scorer.score(cs_proxy, y, z) < 0.2

    def test_2d_target_uses_first_column(self):
        s = seasonal_series()
        y = np.column_stack([s, np.zeros_like(s)])
        assert pseudocauses(y, period=24).shape == (240, 2)
