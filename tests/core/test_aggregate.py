"""Unit tests for multi-query rank aggregation."""

import pytest

from repro.core.aggregate import (
    borda_fusion,
    mean_score_fusion,
    reciprocal_rank_fusion,
)
from repro.core.ranking import RankedFamily, ScoreTable


def table(scorer: str, ordered: list[tuple[str, float]]) -> ScoreTable:
    results = [
        RankedFamily(rank=i + 1, family=name, score=score,
                     n_features=1, p_value=0.01)
        for i, (name, score) in enumerate(ordered)
    ]
    return ScoreTable(results=results, scorer_name=scorer, target="y",
                      n_hypotheses=len(ordered),
                      all_scores={n: s for n, s in ordered})


@pytest.fixture
def three_tables():
    return [
        table("CorrMax", [("a", 0.9), ("b", 0.8), ("c", 0.1)]),
        table("L2", [("b", 0.7), ("a", 0.6), ("c", 0.2)]),
        table("L2-P50", [("a", 0.5), ("c", 0.4), ("b", 0.3)]),
    ]


class TestReciprocalRankFusion:
    def test_consensus_winner(self, three_tables):
        fused = reciprocal_rank_fusion(three_tables)
        assert fused.results[0].family == "a"      # ranks 1, 2, 1
        assert fused.rank_of("c") == 3

    def test_appearance_counts(self, three_tables):
        fused = reciprocal_rank_fusion(three_tables)
        assert all(r.appearances == 3 for r in fused.results)

    def test_missing_families_tolerated(self):
        fused = reciprocal_rank_fusion([
            table("CorrMax", [("a", 0.9), ("b", 0.8)]),
            table("L2", [("b", 0.7)]),
        ])
        assert fused.rank_of("a") is not None
        row_a = next(r for r in fused.results if r.family == "a")
        assert row_a.appearances == 1

    def test_k_flattens(self, three_tables):
        sharp = reciprocal_rank_fusion(three_tables, k=1.0)
        flat = reciprocal_rank_fusion(three_tables, k=1000.0)
        spread_sharp = (sharp.results[0].fused_score
                        - sharp.results[-1].fused_score)
        spread_flat = (flat.results[0].fused_score
                       - flat.results[-1].fused_score)
        assert spread_sharp > spread_flat

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            reciprocal_rank_fusion([])

    def test_render(self, three_tables):
        text = reciprocal_rank_fusion(three_tables).render(2)
        assert "RRF" in text and "a" in text


class TestBordaFusion:
    def test_positional_votes(self, three_tables):
        fused = borda_fusion(three_tables)
        # a: 2+1+2=5, b: 1+2+0=3, c: 0+0+1=1
        assert [r.family for r in fused.results] == ["a", "b", "c"]
        assert fused.results[0].fused_score == 5.0


class TestMeanScoreFusion:
    def test_same_scorer_ok(self):
        fused = mean_score_fusion([
            table("L2", [("a", 0.8), ("b", 0.4)]),
            table("L2", [("a", 0.6), ("b", 0.6)]),
        ])
        assert fused.results[0].family == "a"
        assert fused.results[0].fused_score == pytest.approx(0.7)

    def test_mixed_scorers_rejected(self, three_tables):
        with pytest.raises(ValueError):
            mean_score_fusion(three_tables)


class TestFusionOnRealSession:
    def test_fused_ranking_stabilises_cause(self, rng):
        """Fusing CorrMax and L2 rankings keeps the true cause on top
        even when the individual scorers disagree on the rest."""
        import numpy as np
        from repro.core.families import FamilySet, FeatureFamily
        from repro.core.hypothesis import generate_hypotheses
        from repro.core.ranking import rank_families
        n = 200
        t = rng.standard_normal(n)
        fams = [FeatureFamily("target", t[:, None], ["t"], np.arange(n)),
                FeatureFamily("cause", (t + 0.3 * rng.standard_normal(n))
                              [:, None], ["c"], np.arange(n))]
        for i in range(6):
            fams.append(FeatureFamily(
                f"noise_{i}", rng.standard_normal((n, 2)),
                [f"n{i}:0", f"n{i}:1"], np.arange(n)))
        families = FamilySet(fams)
        hyps = generate_hypotheses(families, "target")
        tables = [rank_families(hyps, scorer=s)
                  for s in ("CorrMax", "L2", "L2-P50")]
        fused = reciprocal_rank_fusion(tables)
        assert fused.results[0].family == "cause"
