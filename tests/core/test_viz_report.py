"""Unit tests for the viz module and diagnostic reports (Appendix D)."""

import numpy as np
import pytest

from repro import viz
from repro.core.families import FamilySet, FeatureFamily
from repro.core.hypothesis import Hypothesis, generate_hypotheses
from repro.core.ranking import rank_families
from repro.core.report import DiagnosticReport, diagnose


class TestSparkline:
    def test_length_matches_width(self, rng):
        assert len(viz.sparkline(rng.standard_normal(500), width=40)) == 40

    def test_short_series_unpooled(self):
        assert len(viz.sparkline(np.arange(5.0), width=60)) == 5

    def test_constant_series_flat(self):
        line = viz.sparkline(np.full(30, 2.0), width=30)
        assert set(line) == {"▁"}

    def test_monotone_series_monotone_glyphs(self):
        line = viz.sparkline(np.arange(8.0), width=8)
        indexes = ["▁▂▃▄▅▆▇█".index(c) for c in line]
        assert indexes == sorted(indexes)

    def test_empty(self):
        assert viz.sparkline(np.empty(0)) == ""


class TestLinePlot:
    def test_dimensions(self, rng):
        text = viz.line_plot(rng.standard_normal(100), width=50, height=6)
        lines = text.splitlines()
        assert len(lines) == 6
        assert all(len(l) <= 50 + 11 for l in lines)

    def test_empty_series(self):
        assert "empty" in viz.line_plot(np.empty(0))

    def test_label_appended(self):
        text = viz.line_plot(np.arange(10.0), label="runtime")
        assert text.splitlines()[-1].strip() == "runtime"


class TestOverlayPlot:
    def test_markers_present(self, rng):
        target = rng.standard_normal(100)
        pred = target + 0.1 * rng.standard_normal(100)
        text = viz.overlay_plot(target, pred, width=40, height=8)
        assert "●" in text or "◉" in text
        assert "observed Y" in text

    def test_identical_series_coincide(self):
        series = np.sin(np.arange(50) / 5.0)
        text = viz.overlay_plot(series, series, width=50, height=8)
        body = "\n".join(text.splitlines()[:-1])   # drop the legend line
        assert "◉" in body
        assert "●" not in body
        assert "○" not in body


class TestHistogram:
    def test_counts_sum(self, rng):
        values = rng.standard_normal(200)
        text = viz.histogram(values, bins=10)
        counts = [int(line.rsplit(" ", 1)[-1])
                  for line in text.splitlines() if "┤" in line]
        assert sum(counts) == 200

    def test_empty(self):
        assert "empty" in viz.histogram(np.empty(0))


@pytest.fixture
def ranked_world(rng):
    n = 200
    target = rng.standard_normal(n)
    fams = [
        FeatureFamily("target", target[:, None], ["t"], np.arange(n)),
        FeatureFamily("good", (target + 0.2 * rng.standard_normal(n))
                      [:, None], ["g"], np.arange(n)),
        FeatureFamily("noise", rng.standard_normal((n, 1)), ["n"],
                      np.arange(n)),
    ]
    families = FamilySet(fams)
    hyps = generate_hypotheses(families, "target")
    table = rank_families(hyps, scorer="L2")
    return hyps, table


class TestDiagnose:
    def test_good_fit_has_low_event_ratio(self, ranked_world):
        hyps, table = ranked_world
        good = next(h for h in hyps if h.name == "good")
        diag = diagnose(good, table.score_of("good"),
                        event_window=(50, 70))
        assert diag.event_residual_ratio() < 2.0
        assert "family: good" in diag.render()

    def test_figure14_pattern_flagged(self, rng):
        """High overall score, unexplained event window -> warning."""
        n = 300
        saw = (np.arange(n) % 40) / 40.0 * 10.0
        spike = np.zeros(n)
        spike[200:210] = 20.0
        target = saw + spike + 0.2 * rng.standard_normal(n)
        x = saw + 0.2 * rng.standard_normal(n)
        hypothesis = Hypothesis(
            x=FeatureFamily("temp", x[:, None], ["x"], np.arange(n)),
            y=FeatureFamily("kpi", target[:, None], ["y"], np.arange(n)),
        )
        diag = diagnose(hypothesis, 0.9, event_window=(200, 210))
        assert diag.event_residual_ratio() > 2.0
        assert "WARNING" in diag.render()

    def test_conditional_diagnosis_residualises(self, rng):
        n = 200
        z = rng.standard_normal(n)
        y = z + 0.2 * rng.standard_normal(n)
        x = rng.standard_normal(n)
        hypothesis = Hypothesis(
            x=FeatureFamily("x", x[:, None], ["x"], np.arange(n)),
            y=FeatureFamily("y", y[:, None], ["y"], np.arange(n)),
            z=FeatureFamily("z", z[:, None], ["z"], np.arange(n)),
        )
        diag = diagnose(hypothesis, 0.0)
        # Residualised target has the z-driven variation removed.
        assert diag.target.std() < y.std()


class TestDiagnosticReport:
    def test_for_ranking(self, ranked_world):
        hyps, table = ranked_world
        report = DiagnosticReport.for_ranking(hyps, table, k=2)
        assert len(report.diagnostics) == 2
        text = report.render()
        assert "family: good" in text

    def test_suspicious_empty_without_event_window(self, ranked_world):
        hyps, table = ranked_world
        report = DiagnosticReport.for_ranking(hyps, table, k=2)
        assert report.suspicious() == []
