"""Unit tests for the declarative three-stage pipeline (Figure 4)."""

import numpy as np
import pytest

from repro.core.families import FamilyError
from repro.core.pipeline import DeclarativePipeline
from repro.sql import Database
from repro.tsdb import SeriesId, TimeSeriesStore
from repro.tsdb.adapter import register_store


@pytest.fixture
def pipeline_db(rng):
    n = 200
    store = TimeSeriesStore()
    ts = np.arange(n)
    cause = rng.standard_normal(n)
    store.insert_array(SeriesId.make("pipeline_runtime",
                                     {"pipeline_name": "p1"}),
                       ts, 20 + 3 * cause + 0.3 * rng.standard_normal(n))
    store.insert_array(SeriesId.make("pipeline_input_rate",
                                     {"pipeline_name": "p1"}),
                       ts, 100 + 5 * rng.standard_normal(n))
    store.insert_array(SeriesId.make("net_retransmits", {"host": "dn-1"}),
                       ts, np.maximum(2 + 4 * cause
                                      + 0.5 * rng.standard_normal(n), 0))
    store.insert_array(SeriesId.make("cpu_util", {"host": "dn-1"}),
                       ts, 40 + 4 * rng.standard_normal(n))
    db = Database()
    register_store(db, store)
    return db


FEATURE_QUERIES = [
    """SELECT timestamp, metric_name, AVG(value) AS v FROM tsdb
       WHERE metric_name IN ('net_retransmits', 'cpu_util')
       GROUP BY timestamp, metric_name ORDER BY timestamp""",
]

TARGET_QUERY = """
    SELECT timestamp, metric_name, AVG(value) AS runtime FROM tsdb
    WHERE metric_name = 'pipeline_runtime'
    GROUP BY timestamp, metric_name ORDER BY timestamp
"""

CONDITION_QUERY = """
    SELECT timestamp, metric_name, AVG(value) AS input_events FROM tsdb
    WHERE metric_name = 'pipeline_input_rate'
    GROUP BY timestamp, metric_name ORDER BY timestamp
"""


class TestDeclarativePipeline:
    def test_stage1_builds_feature_family_table(self, pipeline_db):
        pipeline = DeclarativePipeline(pipeline_db)
        table = pipeline.add_feature_queries(FEATURE_QUERIES)
        assert table.columns == ["timestamp", "name", "v"]
        families = {row[1] for row in table.rows}
        assert families == {"net_retransmits", "cpu_util"}
        # Registered for further SQL interrogation.
        assert pipeline_db.sql(
            "SELECT COUNT(*) FROM feature_family").rows[0][0] == len(table)

    def test_end_to_end_ranking(self, pipeline_db):
        pipeline = DeclarativePipeline(pipeline_db)
        pipeline.add_feature_queries(FEATURE_QUERIES)
        pipeline.set_target_query(TARGET_QUERY)
        score_table = pipeline.run(scorer="L2")
        assert score_table.results[0].family == "net_retransmits"
        # Score table queryable via SQL (stage 3 of Figure 4).
        top = pipeline_db.sql(
            "SELECT family FROM score WHERE rank = 1")
        assert top.rows == [("net_retransmits",)]

    def test_conditioning_stage(self, pipeline_db):
        pipeline = DeclarativePipeline(pipeline_db)
        pipeline.add_feature_queries(FEATURE_QUERIES)
        pipeline.set_target_query(TARGET_QUERY)
        pipeline.set_condition_query(CONDITION_QUERY)
        hyps = pipeline.build_hypotheses()
        assert all(h.z is not None for h in hyps)
        assert {h.name for h in hyps} == {"net_retransmits", "cpu_util"}

    def test_missing_target_fails(self, pipeline_db):
        pipeline = DeclarativePipeline(pipeline_db)
        pipeline.add_feature_queries(FEATURE_QUERIES)
        with pytest.raises(FamilyError):
            pipeline.build_hypotheses()

    def test_missing_features_fails(self, pipeline_db):
        pipeline = DeclarativePipeline(pipeline_db)
        pipeline.set_target_query(TARGET_QUERY)
        with pytest.raises(FamilyError):
            pipeline.build_hypotheses()

    def test_multi_family_target_rejected(self, pipeline_db):
        pipeline = DeclarativePipeline(pipeline_db)
        pipeline.add_feature_queries(FEATURE_QUERIES)
        pipeline.set_target_query("""
            SELECT timestamp, metric_name, AVG(value) AS v FROM tsdb
            GROUP BY timestamp, metric_name
        """)
        with pytest.raises(FamilyError):
            pipeline.build_hypotheses()

    def test_prefixes(self, pipeline_db):
        pipeline = DeclarativePipeline(pipeline_db)
        table = pipeline.add_feature_queries(FEATURE_QUERIES,
                                             prefixes=["net/"])
        assert all(row[1].startswith("net/") for row in table.rows)

    def test_prefix_arity_checked(self, pipeline_db):
        pipeline = DeclarativePipeline(pipeline_db)
        with pytest.raises(FamilyError):
            pipeline.add_feature_queries(FEATURE_QUERIES,
                                         prefixes=["a", "b"])

    def test_clearing_condition(self, pipeline_db):
        pipeline = DeclarativePipeline(pipeline_db)
        pipeline.add_feature_queries(FEATURE_QUERIES)
        pipeline.set_target_query(TARGET_QUERY)
        pipeline.set_condition_query(CONDITION_QUERY)
        pipeline.set_condition_query(None)
        hyps = pipeline.build_hypotheses()
        assert all(h.z is None for h in hyps)
