"""Unit tests for hypothesis ranking and the Score Table."""

import numpy as np
import pytest

from repro.core.families import FamilySet, FeatureFamily
from repro.core.hypothesis import generate_hypotheses
from repro.core.ranking import DEFAULT_TOP_K, rank_families


@pytest.fixture
def toy_families(rng):
    n = 120
    target = rng.standard_normal(n)
    fams = [
        FeatureFamily("target", (target + 0.0)[:, None], ["t:0"],
                      np.arange(n)),
        FeatureFamily("strong", (target + 0.2 * rng.standard_normal(n))
                      [:, None], ["s:0"], np.arange(n)),
        FeatureFamily("weak", (0.4 * target + rng.standard_normal(n))
                      [:, None], ["w:0"], np.arange(n)),
        FeatureFamily("noise", rng.standard_normal((n, 1)), ["n:0"],
                      np.arange(n)),
    ]
    return FamilySet(fams)


class TestRankFamilies:
    def test_order_by_decreasing_score(self, toy_families):
        hyps = generate_hypotheses(toy_families, "target")
        table = rank_families(hyps, scorer="L2")
        scores = [r.score for r in table.results]
        assert scores == sorted(scores, reverse=True)
        assert table.results[0].family == "strong"

    def test_ranks_are_one_based_and_dense(self, toy_families):
        hyps = generate_hypotheses(toy_families, "target")
        table = rank_families(hyps, scorer="CorrMax")
        assert [r.rank for r in table.results] == [1, 2, 3]

    def test_full_ranking_retained(self, toy_families):
        hyps = generate_hypotheses(toy_families, "target")
        table = rank_families(hyps, scorer="CorrMax", top_k=1)
        assert len(table.results) == 3        # full list kept
        assert len(table.top(1)) == 1

    def test_rank_of_and_score_of(self, toy_families):
        hyps = generate_hypotheses(toy_families, "target")
        table = rank_families(hyps, scorer="CorrMax")
        assert table.rank_of("strong") == 1
        assert table.rank_of("missing") is None
        assert 0.0 <= table.score_of("noise") <= 1.0

    def test_significance_annotation(self, toy_families):
        hyps = generate_hypotheses(toy_families, "target")
        table = rank_families(hyps, scorer="L2")
        strong = table.results[0]
        noise = next(r for r in table.results if r.family == "noise")
        assert strong.p_value < noise.p_value
        assert strong.significant_bh

    def test_to_table_round_trip(self, toy_families):
        hyps = generate_hypotheses(toy_families, "target")
        table = rank_families(hyps, scorer="CorrMax").to_table()
        assert "family" in table.columns
        assert len(table) == 3

    def test_render_contains_families(self, toy_families):
        hyps = generate_hypotheses(toy_families, "target")
        text = rank_families(hyps, scorer="CorrMax").render()
        assert "strong" in text
        assert "Scorer: CorrMax" in text

    def test_empty_hypotheses(self):
        table = rank_families([], scorer="CorrMax")
        assert table.results == []

    def test_custom_score_fn(self, toy_families):
        hyps = generate_hypotheses(toy_families, "target")
        fixed = {"strong": 0.1, "weak": 0.9, "noise": 0.5}
        table = rank_families(hyps, scorer="CorrMax",
                              score_fn=lambda h: fixed[h.name])
        assert table.results[0].family == "weak"

    def test_default_top_k_is_20(self):
        assert DEFAULT_TOP_K == 20

    def test_timings_recorded(self, toy_families):
        hyps = generate_hypotheses(toy_families, "target")
        table = rank_families(hyps, scorer="L2")
        assert all(r.seconds >= 0.0 for r in table.results)
        assert table.total_seconds > 0.0
