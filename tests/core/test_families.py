"""Unit tests for feature families and the Feature Family Table."""

import numpy as np
import pytest

from repro.core.families import (
    FamilyError,
    FamilySet,
    FeatureFamily,
    families_from_store,
    families_from_table,
    family_table_from_store,
    normalise_query_result,
)
from repro.sql.table import Table
from repro.tsdb import SeriesId, TimeSeriesStore


class TestFeatureFamily:
    def test_members_must_match_columns(self):
        with pytest.raises(FamilyError):
            FeatureFamily(name="f", matrix=np.zeros((5, 2)), members=["a"])

    def test_1d_matrix_promoted(self):
        fam = FeatureFamily(name="f", matrix=np.zeros(5), members=["a"])
        assert fam.matrix.shape == (5, 1)

    def test_nan_interpolated_on_construction(self):
        matrix = np.array([[1.0], [np.nan], [3.0]])
        fam = FeatureFamily(name="f", matrix=matrix, members=["a"])
        assert not np.isnan(fam.matrix).any()

    def test_restrict_by_time(self):
        fam = FeatureFamily(name="f", matrix=np.arange(10.0)[:, None],
                            members=["a"], grid=np.arange(10))
        sub = fam.restrict(3, 7)
        assert sub.grid.tolist() == [3, 4, 5, 6]
        assert sub.matrix[:, 0].tolist() == [3.0, 4.0, 5.0, 6.0]

    def test_restrict_without_grid_fails(self):
        fam = FeatureFamily(name="f", matrix=np.zeros((5, 1)),
                            members=["a"])
        with pytest.raises(FamilyError):
            fam.restrict(0, 3)


class TestFamilySet:
    def _fam(self, name, n=10, f=2):
        return FeatureFamily(name=name, matrix=np.zeros((n, f)),
                             members=[f"{name}:{j}" for j in range(f)],
                             grid=np.arange(n))

    def test_duplicate_names_rejected(self):
        fams = FamilySet([self._fam("a")])
        with pytest.raises(FamilyError):
            fams.add(self._fam("a"))

    def test_mismatched_lengths_rejected(self):
        fams = FamilySet([self._fam("a", n=10)])
        with pytest.raises(FamilyError):
            fams.add(self._fam("b", n=12))

    def test_total_features(self):
        fams = FamilySet([self._fam("a", f=2), self._fam("b", f=5)])
        assert fams.total_features() == 7

    def test_subset(self):
        fams = FamilySet([self._fam("a"), self._fam("b"), self._fam("c")])
        assert fams.subset(["a", "c"]).names() == ["a", "c"]

    def test_unknown_family(self):
        with pytest.raises(FamilyError):
            FamilySet()["zzz"]


class TestFamiliesFromStore:
    @pytest.fixture
    def store(self):
        store = TimeSeriesStore()
        ts = np.arange(20)
        for host in ("dn-1", "dn-2"):
            store.insert_array(SeriesId.make("disk", {"host": host}),
                               ts, np.ones(20))
        store.insert_array(SeriesId.make("cpu", {"host": "dn-1"}),
                           ts, np.ones(20))
        store.insert_array(SeriesId.make("cpu"), ts, np.ones(20))
        return store

    def test_group_by_name(self, store):
        fams = families_from_store(store, group_by="name")
        assert fams.names() == ["cpu", "disk"]
        assert fams["disk"].n_features == 2
        assert fams["cpu"].n_features == 2

    def test_group_by_tag(self, store):
        fams = families_from_store(store, group_by="tag:host")
        assert set(fams.names()) == {"dn-1", "dn-2", "NULL"}
        assert fams["dn-1"].n_features == 2
        assert fams["NULL"].n_features == 1  # untagged cpu

    def test_group_by_callable(self, store):
        fams = families_from_store(
            store, group_by=lambda s: s.name.upper())
        assert set(fams.names()) == {"CPU", "DISK"}

    def test_time_clipping(self, store):
        fams = families_from_store(store, start=5, end=10)
        assert fams["cpu"].n_samples == 5

    def test_bad_group_by(self, store):
        with pytest.raises(FamilyError):
            families_from_store(store, group_by="bogus")

    def test_empty_scan(self):
        with pytest.raises(FamilyError):
            families_from_store(TimeSeriesStore())


class TestFeatureFamilyTable:
    def test_round_trip_store_table_families(self):
        store = TimeSeriesStore()
        ts = np.arange(6)
        store.insert_array(SeriesId.make("m1", {"h": "a"}), ts,
                           np.arange(6.0))
        store.insert_array(SeriesId.make("m1", {"h": "b"}), ts,
                           np.arange(6.0) * 2)
        table = family_table_from_store(store)
        assert table.columns == ["timestamp", "name", "v"]
        fams = families_from_table(table)
        assert fams["m1"].n_features == 2
        assert fams["m1"].n_samples == 6
        # Values survive the round trip.
        col = fams["m1"].members.index("m1{h=a}")
        assert fams["m1"].matrix[:, col].tolist() == list(range(6))

    def test_missing_timestamps_interpolated(self):
        table = Table(["timestamp", "name", "v"], [
            (0, "f", {"x": 1.0}),
            (2, "f", {"x": 3.0}),
            (0, "g", {"y": 5.0}),
            (1, "g", {"y": 6.0}),
            (2, "g", {"y": 7.0}),
        ])
        fams = families_from_table(table)
        assert fams["f"].n_samples == 3
        assert not np.isnan(fams["f"].matrix).any()

    def test_non_map_value_rejected(self):
        table = Table(["timestamp", "name", "v"], [(0, "f", 1.0)])
        with pytest.raises(FamilyError):
            families_from_table(table)

    def test_empty_table_rejected(self):
        with pytest.raises(FamilyError):
            families_from_table(Table.empty(["timestamp", "name", "v"]))


class TestNormaliseQueryResult:
    def test_columns_fold_into_map(self):
        raw = Table(["ts", "grp", "cpu", "mem"], [
            (0, "web", 1.0, 2.0),
            (1, "web", 3.0, 4.0),
        ])
        out = normalise_query_result(raw)
        assert out.columns == ["timestamp", "name", "v"]
        assert out.rows[0] == (0, "web", {"cpu": 1.0, "mem": 2.0})

    def test_prefix_applied(self):
        raw = Table(["ts", "grp", "v1"], [(0, "a", 1.0)])
        out = normalise_query_result(raw, family_prefix="target:")
        assert out.rows[0][1] == "target:a"

    def test_null_timestamp_skipped(self):
        raw = Table(["ts", "grp", "v1"], [(None, "a", 1.0), (1, "a", 2.0)])
        assert len(normalise_query_result(raw)) == 1

    def test_too_few_columns(self):
        with pytest.raises(FamilyError):
            normalise_query_result(Table(["ts", "grp"], []))
