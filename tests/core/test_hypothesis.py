"""Unit tests for hypothesis triples and generation."""

import numpy as np
import pytest

from repro.core.families import FamilyError, FamilySet, FeatureFamily
from repro.core.hypothesis import Hypothesis, generate_hypotheses


def fam(name, members=None, n=20, f=1):
    members = members or [f"{name}:{j}" for j in range(f)]
    return FeatureFamily(name=name, matrix=np.zeros((n, len(members))),
                         members=members, grid=np.arange(n))


class TestHypothesis:
    def test_overlap_rejected(self):
        shared = ["metric-a"]
        with pytest.raises(FamilyError):
            Hypothesis(x=fam("x", shared), y=fam("y", shared))

    def test_z_overlap_rejected(self):
        with pytest.raises(FamilyError):
            Hypothesis(x=fam("x", ["m1"]), y=fam("y", ["m2"]),
                       z=fam("z", ["m1"]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(FamilyError):
            Hypothesis(x=fam("x", n=20), y=fam("y", n=30))

    def test_matrices_accessor(self):
        h = Hypothesis(x=fam("x", f=3), y=fam("y"))
        x, y, z = h.matrices()
        assert x.shape == (20, 3)
        assert y.shape == (20, 1)
        assert z is None

    def test_name_is_x_family(self):
        assert Hypothesis(x=fam("abc"), y=fam("y")).name == "abc"


class TestGenerateHypotheses:
    @pytest.fixture
    def families(self):
        return FamilySet([fam("target"), fam("a"), fam("b"), fam("c"),
                          fam("cond")])

    def test_excludes_target_and_condition(self, families):
        hyps = generate_hypotheses(families, "target", condition="cond")
        names = {h.name for h in hyps}
        assert names == {"a", "b", "c"}
        assert all(h.z.name == "cond" for h in hyps)

    def test_no_condition(self, families):
        hyps = generate_hypotheses(families, "target")
        assert len(hyps) == 4
        assert all(h.z is None for h in hyps)

    def test_search_subset(self, families):
        hyps = generate_hypotheses(families, "target", search=["a", "b"])
        assert {h.name for h in hyps} == {"a", "b"}

    def test_explicit_exclusions(self, families):
        hyps = generate_hypotheses(families, "target", exclude=["a", "c"])
        assert {h.name for h in hyps} == {"b", "cond"}

    def test_explicit_z_family(self, families):
        z = fam("pseudo", ["pseudo:trend", "pseudo:seasonal"], f=2)
        hyps = generate_hypotheses(families, "target", condition=z)
        assert all(h.z.name == "pseudo" for h in hyps)

    def test_families_overlapping_target_metrics_skipped(self):
        families = FamilySet([
            fam("target", ["shared-metric"]),
            fam("alias_of_target", ["shared-metric"]),
            fam("clean", ["other-metric"]),
        ])
        hyps = generate_hypotheses(families, "target")
        assert {h.name for h in hyps} == {"clean"}

    def test_unknown_target(self, families):
        with pytest.raises(FamilyError):
            generate_hypotheses(families, "zzz")
