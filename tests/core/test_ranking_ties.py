"""Regression tests pinning deterministic tie-breaking in the ranking.

Exact score ties are common in replayed incidents (duplicate metrics,
saturated correlation scores).  The Score Table breaks them by family
name via :func:`repro.core.ranking.ranking_sort_key`, so the ranking —
and the replay scorecard graded from it — never depends on hypothesis
input order or scheduling.  NaN scores sort after every real score,
name-ordered among themselves.
"""

import math

import numpy as np
import pytest

from repro.core.families import FamilySet, FeatureFamily
from repro.core.hypothesis import generate_hypotheses
from repro.core.ranking import rank_families, ranking_sort_key

#: Deliberately non-alphabetical insertion order.
TIED_NAMES = ("zeta", "alpha", "mid", "beta", "omega")


def tied_families(order=TIED_NAMES):
    """A target plus identical-matrix candidates => exact score ties."""
    rng = np.random.default_rng(42)
    n = 96
    grid = np.arange(n)
    target = rng.standard_normal(n)
    candidate = target + 0.3 * rng.standard_normal(n)
    fams = [FeatureFamily("target", target[:, None], ["t:0"], grid)]
    for name in order:
        fams.append(FeatureFamily(name, candidate.copy()[:, None],
                                  [f"{name}:0"], grid))
    return FamilySet(fams)


class TestRankingSortKey:
    def test_higher_score_first(self):
        assert ranking_sort_key(0.9, "b") < ranking_sort_key(0.5, "a")

    def test_exact_tie_broken_by_name(self):
        assert ranking_sort_key(0.5, "alpha") < ranking_sort_key(0.5, "beta")

    def test_nan_sorts_after_any_score(self):
        assert ranking_sort_key(-1e9, "z") < ranking_sort_key(math.nan, "a")

    def test_nan_rows_name_ordered(self):
        a = ranking_sort_key(math.nan, "alpha")
        b = ranking_sort_key(math.nan, "beta")
        assert a < b
        # The key substitutes a constant for NaN: comparable, not NaN.
        assert a == (1, 0.0, "alpha")


class TestTiedScores:
    def test_ties_pinned_to_alphabetical_order(self):
        families = tied_families()
        hyps = generate_hypotheses(families, "target")
        table = rank_families(hyps, scorer="L2")
        scores = {r.score for r in table.results}
        assert len(scores) == 1, "fixture must produce an exact tie"
        assert [r.family for r in table.results] == sorted(TIED_NAMES)

    def test_order_independent_of_input_order(self):
        orders = (TIED_NAMES, tuple(reversed(TIED_NAMES)),
                  tuple(sorted(TIED_NAMES)))
        rankings = []
        for order in orders:
            hyps = generate_hypotheses(tied_families(order), "target")
            table = rank_families(hyps, scorer="CorrMax")
            rankings.append([r.family for r in table.results])
        assert rankings[0] == rankings[1] == rankings[2] == sorted(TIED_NAMES)

    @pytest.mark.parametrize("backend,transfer", [
        ("thread", "shm"),
        ("process", "shm"),
        ("process", "pickle"),
        ("batch", "shm"),
    ])
    def test_tie_break_identical_across_backends(self, backend, transfer):
        hyps = generate_hypotheses(tied_families(), "target")
        table = rank_families(hyps, scorer="L2", backend=backend,
                              n_workers=2, transfer=transfer)
        assert [r.family for r in table.results] == sorted(TIED_NAMES)


class TestNanScores:
    def test_nan_rows_sort_last_name_ordered(self):
        families = tied_families()
        hyps = generate_hypotheses(families, "target")
        nan_families = {"zeta", "beta"}

        def score_fn(hypothesis):
            if hypothesis.x.name in nan_families:
                return math.nan
            return 0.5

        table = rank_families(hyps, score_fn=score_fn)
        names = [r.family for r in table.results]
        assert names == ["alpha", "mid", "omega", "beta", "zeta"]
