"""Unit tests for automatic scorer selection."""

import numpy as np
import pytest

from repro.core.autoselect import (
    AutoScorer,
    SelectionDecision,
    choose_scorer,
    score_with_auto_selection,
)
from repro.core.families import FamilySet, FeatureFamily
from repro.core.hypothesis import generate_hypotheses


def world(rng, widths, n=200):
    target = rng.standard_normal(n)
    fams = [FeatureFamily("target", target[:, None], ["t"], np.arange(n))]
    for i, width in enumerate(widths):
        data = rng.standard_normal((n, width))
        if i == 0:
            data[:, 0] = target + 0.2 * rng.standard_normal(n)
        fams.append(FeatureFamily(
            f"fam_{i}", data, [f"fam_{i}:{j}" for j in range(width)],
            np.arange(n)))
    return generate_hypotheses(FamilySet(fams), "target")


class TestChooseScorer:
    def test_all_univariate_picks_corrmax(self, rng):
        decision = choose_scorer(world(rng, [1, 1, 1]))
        assert decision.scorer_name == "CorrMax"

    def test_wide_families_pick_projection(self, rng):
        decision = choose_scorer(world(rng, [1, 300, 5]))
        assert decision.scorer_name.startswith("L2-P")
        assert "project" in decision.reason

    def test_moderate_widths_pick_l2(self, rng):
        decision = choose_scorer(world(rng, [3, 8, 5]))
        assert decision.scorer_name == "L2"

    def test_empty_space(self):
        decision = choose_scorer([])
        assert decision.scorer_name == "CorrMax"

    def test_decision_records_shape(self, rng):
        decision = choose_scorer(world(rng, [1, 300, 5]))
        assert decision.max_features == 300
        assert decision.n_samples == 200


class TestAutoScorer:
    def test_routes_by_width(self, rng):
        scorer = AutoScorer()
        y = rng.standard_normal((200, 1))
        scorer.score(rng.standard_normal(200), y)            # univariate
        scorer.score(rng.standard_normal((200, 8)), y)       # joint
        scorer.score(rng.standard_normal((200, 300)), y)     # projected
        assert scorer.decisions == ["univariate", "joint", "projected-50"]

    def test_scores_sane(self, rng):
        scorer = AutoScorer()
        signal = rng.standard_normal(300)
        y = (signal + 0.2 * rng.standard_normal(300))[:, None]
        assert scorer.score(signal[:, None], y) > 0.8
        assert scorer.score(rng.standard_normal((300, 5)), y) < 0.1

    def test_conditioning_uses_joint_path(self, rng):
        scorer = AutoScorer()
        z = rng.standard_normal((300, 1))
        x = z + 0.3 * rng.standard_normal((300, 1))
        y = z + 0.3 * rng.standard_normal((300, 1))
        assert scorer.score(x, y, z) < 0.15
        assert scorer.decisions[-1] == "joint"


class TestScoreWithAutoSelection:
    def test_end_to_end(self, rng):
        hyps = world(rng, [1, 4, 120])
        table, decision = score_with_auto_selection(hyps)
        assert isinstance(decision, SelectionDecision)
        assert table.results[0].family == "fam_0"
        assert table.scorer_name == "Auto"


class TestRegistry:
    def test_auto_scorer_registered(self):
        import repro.core.autoselect  # noqa: F401  (registration side effect)
        from repro.scoring import get_scorer
        scorer = get_scorer("auto")
        assert scorer.name == "Auto"

    def test_session_accepts_auto_by_name(self, rng):
        import numpy as np
        from repro.core.engine import ExplainItSession
        from repro.tsdb import SeriesId, TimeSeriesStore
        n = 150
        store = TimeSeriesStore()
        t = rng.standard_normal(n)
        store.insert_array(SeriesId.make("kpi"), np.arange(n), t)
        store.insert_array(SeriesId.make("cause"), np.arange(n),
                           t + 0.2 * rng.standard_normal(n))
        store.insert_array(SeriesId.make("noise"), np.arange(n),
                           rng.standard_normal(n))
        session = ExplainItSession(store)
        session.set_target("kpi")
        table = session.explain(scorer="Auto")
        assert table.results[0].family == "cause"
