"""Test package marker: gives test modules unique import names."""
