"""Unit tests for event-window detection."""

import numpy as np
import pytest

from repro.core.events import (
    EventWindow,
    cusum_shift,
    detect_spikes,
    rolling_zscores,
    suggest_explain_range,
)


def spiky_series(rng, n=400, spike_at=250, spike_len=10, height=10.0):
    series = rng.standard_normal(n)
    series[spike_at:spike_at + spike_len] += height
    return series


class TestRollingZscores:
    def test_flat_series_near_zero(self):
        z = rolling_zscores(np.full(100, 3.0) , window=20)
        assert z.max() < 1.0

    def test_spike_scores_high(self, rng):
        series = spiky_series(rng)
        z = rolling_zscores(series, window=30)
        assert z[250] > 5.0

    def test_length_preserved(self, rng):
        assert rolling_zscores(rng.standard_normal(77)).size == 77

    def test_window_validation(self):
        with pytest.raises(ValueError):
            rolling_zscores(np.zeros(10), window=1)


class TestDetectSpikes:
    def test_finds_injected_spike(self, rng):
        series = spiky_series(rng, spike_at=250, spike_len=10)
        windows = detect_spikes(series)
        assert windows, "expected at least one window"
        top = windows[0]
        assert top.start <= 252
        assert top.end >= 251
        assert top.severity > 4.0

    def test_no_spikes_in_noise(self, rng):
        windows = detect_spikes(rng.standard_normal(300), threshold=6.0)
        assert windows == []

    def test_two_spikes_ranked_by_severity(self, rng):
        series = rng.standard_normal(500)
        series[100:105] += 6.0
        series[300:305] += 15.0
        windows = detect_spikes(series)
        assert len(windows) >= 2
        assert 295 <= windows[0].start <= 305

    def test_nearby_exceedances_merged(self, rng):
        # Once the first burst enters the trailing window it inflates the
        # rolling std ("masking"), so the second burst scores lower; a
        # threshold of 3 keeps both above water to exercise merging.
        series = rng.standard_normal(300) * 0.1
        series[100:103] += 5.0
        series[105:108] += 12.0      # gap of 2 < merge_gap; taller so the
        # first burst's inflation of the rolling std cannot mask it
        windows = detect_spikes(series, threshold=3.0, merge_gap=3)
        covering = [w for w in windows if w.start <= 101 and w.end >= 106]
        assert covering, windows

    def test_max_windows_respected(self, rng):
        series = rng.standard_normal(600) * 0.1
        for pos in range(50, 600, 50):
            series[pos] += 8.0
        assert len(detect_spikes(series, max_windows=3)) == 3


class TestCusum:
    def test_detects_level_shift(self, rng):
        series = np.concatenate([rng.standard_normal(200),
                                 rng.standard_normal(200) + 3.0])
        window = cusum_shift(series)
        assert window is not None
        assert 180 <= window.start <= 230
        assert window.end == 400

    def test_detects_downward_shift(self, rng):
        series = np.concatenate([rng.standard_normal(200),
                                 rng.standard_normal(200) - 3.0])
        assert cusum_shift(series) is not None

    def test_stationary_series_none(self, rng):
        assert cusum_shift(rng.standard_normal(400)) is None

    def test_constant_series_none(self):
        assert cusum_shift(np.full(100, 2.0)) is None


class TestSuggestExplainRange:
    def test_prefers_spike(self, rng):
        series = spiky_series(rng)
        window = suggest_explain_range(series)
        assert window is not None
        assert 240 <= window.start <= 255

    def test_falls_back_to_cusum(self, rng):
        series = np.concatenate([rng.standard_normal(200) * 0.2,
                                 rng.standard_normal(200) * 0.2 + 3.0])
        window = suggest_explain_range(series, threshold=50.0)
        assert window is not None
        assert window.end == 400

    def test_feeds_session_event_lift(self, rng):
        """The detected window plugs straight into the session workflow."""
        from repro.core.engine import ExplainItSession
        from repro.tsdb import SeriesId, TimeSeriesStore
        n = 400
        series = spiky_series(rng, n=n)
        store = TimeSeriesStore()
        store.insert_array(SeriesId.make("kpi"), np.arange(n), series)
        store.insert_array(SeriesId.make("other"), np.arange(n),
                           rng.standard_normal(n))
        window = suggest_explain_range(series)
        session = ExplainItSession(store)
        session.set_time_ranges(0, n, explain_start=window.start,
                                explain_end=window.end)
        session.set_target("kpi")
        assert session.event_lift("kpi") > 2.0

    def test_event_window_helpers(self):
        w = EventWindow(start=5, end=9, severity=3.0)
        assert w.duration == 4
        assert w.as_tuple() == (5, 9)
