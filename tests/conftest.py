"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sql import Database, Table
from repro.tsdb import SeriesId, TimeSeriesStore


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_store() -> TimeSeriesStore:
    """A store with three metrics over 60 minutes."""
    store = TimeSeriesStore()
    ts = np.arange(60)
    store.insert_array(
        SeriesId.make("runtime", {"pipeline_name": "p1"}), ts,
        20.0 + np.sin(ts / 5.0))
    store.insert_array(
        SeriesId.make("runtime", {"pipeline_name": "p2"}), ts,
        22.0 + np.cos(ts / 5.0))
    store.insert_array(
        SeriesId.make("disk", {"host": "datanode-1",
                               "type": "read_latency"}), ts,
        3.0 + 0.1 * ts)
    return store


@pytest.fixture
def people_table() -> Table:
    return Table(
        ["name", "age", "city"],
        [
            ("alice", 34, "amsterdam"),
            ("bob", 28, "berlin"),
            ("carol", 41, "amsterdam"),
            ("dave", 28, None),
        ],
    )


@pytest.fixture
def db(people_table: Table) -> Database:
    database = Database()
    database.register("people", people_table)
    database.register(
        "orders",
        Table(
            ["order_id", "customer", "amount"],
            [
                (1, "alice", 120.0),
                (2, "alice", 80.0),
                (3, "bob", 42.0),
                (4, "erin", 10.0),
            ],
        ),
    )
    return database
