"""ResultCache: hits, LRU eviction, version invalidation, thread safety."""

import threading

import pytest

from repro.serve.cache import ResultCache


def test_miss_then_hit_roundtrip():
    cache = ResultCache()
    assert cache.get("q", 1) is None
    cache.put("q", 1, "result")
    assert cache.get("q", 1) == "result"
    stats = cache.stats
    assert stats.hits == 1 and stats.misses == 1 and stats.entries == 1


def test_version_mismatch_is_a_miss():
    cache = ResultCache()
    cache.put("q", 1, "old")
    assert cache.get("q", 2) is None
    # The old entry still serves a reader that (validly) pinned v1.
    assert cache.get("q", 1) == "old"


def test_lru_eviction_order_and_bound():
    cache = ResultCache(max_entries=2)
    cache.put("a", 1, "A")
    cache.put("b", 1, "B")
    assert cache.get("a", 1) == "A"     # refresh a; b becomes LRU
    cache.put("c", 1, "C")
    assert cache.get("b", 1) is None
    assert cache.get("a", 1) == "A"
    assert cache.get("c", 1) == "C"
    assert len(cache) == 2
    assert cache.stats.evictions == 1


def test_evict_superseded_drops_only_stale_versions():
    cache = ResultCache()
    cache.put("a", 1, "A1")
    cache.put("b", 1, "B1")
    cache.put("a", 2, "A2")
    removed = cache.evict_superseded(2)
    assert removed == 2
    assert cache.get("a", 2) == "A2"
    assert cache.get("a", 1) is None
    assert cache.stats.invalidations == 2


def test_evict_superseded_noop_when_all_current():
    cache = ResultCache()
    cache.put("a", 3, "A")
    assert cache.evict_superseded(3) == 0
    assert cache.get("a", 3) == "A"


def test_clear_empties_but_keeps_counters():
    cache = ResultCache()
    cache.put("a", 1, "A")
    cache.get("a", 1)
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.hits == 1


def test_rejects_nonpositive_bound():
    with pytest.raises(ValueError):
        ResultCache(max_entries=0)


def test_concurrent_puts_gets_and_sweeps_stay_consistent():
    cache = ResultCache(max_entries=64)
    errors = []

    def worker(tid):
        try:
            for i in range(300):
                version = i % 5
                cache.put((tid, i % 10), version, i)
                value = cache.get((tid, i % 10), version)
                assert value is None or isinstance(value, int)
                if i % 50 == 0:
                    cache.evict_superseded(version)
        except Exception as exc:      # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(cache) <= 64
