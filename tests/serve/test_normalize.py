"""Query normalisation: same AST, formatting-insensitive, key-stable."""

import pytest

from repro.serve.cache import normalize_query
from repro.sql.errors import ParseError
from repro.sql.optimizer import optimize
from repro.sql.parser import parse

#: A corpus spanning the dialect: the normalised text of each must parse
#: to exactly the AST of the original.
CORPUS = [
    "SELECT 1",
    "SELECT * FROM tsdb",
    "SELECT metric_name, COUNT(*) AS n FROM tsdb GROUP BY metric_name",
    "SELECT a.x, b.y FROM a JOIN b ON a.k = b.k WHERE a.x > 3 ORDER BY b.y",
    "SELECT value FROM tsdb WHERE metric_name = 'cpu_util' AND value >= 0.5",
    "SELECT timestamp, AVG(value) AS v FROM tsdb GROUP BY timestamp "
    "HAVING AVG(value) > 2 ORDER BY v DESC LIMIT 10",
    "SELECT CASE WHEN value > 1 THEN 'hi' ELSE 'lo' END AS bucket FROM tsdb",
    "SELECT name, RANK() OVER (PARTITION BY name ORDER BY value) FROM t",
    "SELECT value FROM tsdb WHERE tag LIKE 'host-%' AND value IS NOT NULL",
    "SELECT DISTINCT metric_name FROM tsdb WHERE value IN (1, 2, 3)",
    "SELECT 'it''s quoted' AS s, -2.5e3 AS x FROM t",
]


@pytest.mark.parametrize("query", CORPUS)
def test_normalized_text_parses_to_same_ast(query):
    assert parse(normalize_query(query)) == parse(query)


@pytest.mark.parametrize("query", CORPUS)
def test_normalized_text_same_optimized_plan(query):
    assert optimize(parse(normalize_query(query))) == optimize(parse(query))


@pytest.mark.parametrize("query", CORPUS)
def test_normalization_is_idempotent(query):
    once = normalize_query(query)
    assert normalize_query(once) == once


def test_whitespace_comments_and_keyword_case_fold():
    a = normalize_query(
        "select   metric_name,avg(value) -- trailing comment\n"
        "  FROM tsdb\nGROUP  BY metric_name")
    b = normalize_query(
        "SELECT metric_name, AVG(value) FROM tsdb GROUP BY metric_name")
    assert a == b


def test_function_name_case_folds_but_column_case_does_not():
    assert (normalize_query("SELECT count(*) FROM t")
            == normalize_query("SELECT COUNT(*) FROM t"))
    # Bare column references name output columns as written, so their
    # case is semantic and must survive normalisation.
    assert (normalize_query("SELECT Value FROM t")
            != normalize_query("SELECT value FROM t"))


def test_semantic_differences_stay_distinct():
    base = normalize_query("SELECT value FROM tsdb WHERE value > 1")
    assert normalize_query("SELECT value FROM tsdb WHERE value > 2") != base
    assert normalize_query("SELECT value FROM tsdb WHERE value < 1") != base
    assert normalize_query("SELECT 'a' FROM t") != normalize_query(
        "SELECT 'A' FROM t")


def test_string_literals_requote_canonically():
    a = normalize_query("SELECT 'it''s' FROM t")
    assert parse(a) == parse("SELECT 'it''s' FROM t")


def test_rejects_unlexable_input():
    with pytest.raises(ParseError):
        normalize_query("SELECT 'unterminated")
