"""QueryServer: pinned-version serving, caching, invalidation, staleness."""

import struct
import threading
import time

import numpy as np
import pytest

from repro.core.families import families_from_store
from repro.core.hypothesis import generate_hypotheses
from repro.core.ranking import rank_families
from repro.serve import QueryServer
from repro.sql import Database
from repro.tsdb.adapter import register_store
from repro.tsdb.model import SeriesId
from repro.tsdb.sharded import ShardedTimeSeriesStore
from repro.tsdb.storage import TimeSeriesStore

N = 96
GROUP_QUERY = ("SELECT metric_name, COUNT(*) AS n, AVG(value) AS v "
               "FROM tsdb GROUP BY metric_name ORDER BY metric_name")


def fill(store, seed=0, n=N, hosts=("h0", "h1")):
    """Family-structured data: a cause driving a target, plus decoys."""
    rng = np.random.default_rng(seed)
    ts = np.arange(n, dtype=np.int64)
    cause = np.cumsum(rng.standard_normal(n))
    for name in hosts:
        host = {"host": name}
        store.insert_array(SeriesId.make("cause_metric", host), ts,
                           cause + 0.1 * rng.standard_normal(n))
        store.insert_array(SeriesId.make("target_metric", host), ts,
                           2.0 * cause + 0.2 * rng.standard_normal(n))
        for d in range(3):
            store.insert_array(SeriesId.make(f"decoy_{d}", host), ts,
                               rng.standard_normal(n))
    return store


def bitwise_rows(table):
    """Rows with floats replaced by their IEEE bytes (NaN/-0.0 exact)."""
    return [tuple(struct.pack("<d", c) if isinstance(c, float) else c
                  for c in row)
            for row in table.rows]


def assert_bitwise_equal(a, b):
    assert a.columns == b.columns
    assert bitwise_rows(a) == bitwise_rows(b)


@pytest.fixture()
def store():
    return fill(ShardedTimeSeriesStore(n_shards=4))


@pytest.fixture()
def server(store):
    with QueryServer(store, n_workers=4) as srv:
        yield srv


# ---------------------------------------------------------------------------
# SQL serving + cache behaviour
# ---------------------------------------------------------------------------

def test_sql_matches_direct_database(server, store):
    direct = Database()
    register_store(direct, store.snapshot())
    assert_bitwise_equal(server.sql(GROUP_QUERY), direct.sql(GROUP_QUERY))


def test_repeat_query_is_a_cache_hit_returning_same_object(server):
    first = server.query(GROUP_QUERY)
    second = server.query(GROUP_QUERY)
    assert not first.cached and second.cached
    assert second.value is first.value
    assert second.version == first.version


def test_formatting_variants_share_one_cache_entry(server):
    server.sql(GROUP_QUERY)
    variant = ("select metric_name,  count(*) AS n, avg(value) AS v  "
               "from tsdb -- dashboard\n group by metric_name "
               "order by metric_name")
    assert server.query(variant).cached
    assert len(server.cache) == 1


def test_cached_result_bitwise_equal_to_fresh_server(store):
    with QueryServer(store) as warm:
        warm.sql(GROUP_QUERY)
        cached = warm.query(GROUP_QUERY)
    with QueryServer(store) as cold:
        fresh = cold.query(GROUP_QUERY)
    assert cached.cached and not fresh.cached
    assert_bitwise_equal(cached.value, fresh.value)


def test_concurrent_submissions_agree(server):
    futures = [server.submit_sql(GROUP_QUERY) for _ in range(16)]
    results = [f.result() for f in futures]
    for result in results[1:]:
        assert_bitwise_equal(result.value, results[0].value)
    assert any(r.cached for r in results[1:])


def test_closed_server_rejects_requests(store):
    server = QueryServer(store)
    server.close()
    with pytest.raises(RuntimeError):
        server.sql("SELECT 1")


# ---------------------------------------------------------------------------
# Invalidation: every version-bump path drops cached results
# ---------------------------------------------------------------------------

def _merge_store():
    other = TimeSeriesStore()
    other.insert_array(SeriesId.make("merged_metric"),
                       np.arange(4, dtype=np.int64), np.ones(4))
    return other


MUTATIONS = {
    "insert": lambda s: s.insert(SeriesId.make("cause_metric",
                                               {"host": "h0"}), N, 1.0),
    "insert_array": lambda s: s.insert_array(
        SeriesId.make("fresh_metric"), np.arange(8, dtype=np.int64),
        np.zeros(8)),
    "apply": lambda s: s.apply(SeriesId.make("cause_metric", {"host": "h0"}),
                               lambda ts, vs: vs + 1.0),
    "merge": lambda s: s.merge(_merge_store()),
}


@pytest.mark.parametrize("mutate", MUTATIONS.values(), ids=MUTATIONS.keys())
def test_mutation_invalidates_cached_results(server, store, mutate):
    before = server.query(GROUP_QUERY)
    mutate(store)
    after = server.query(GROUP_QUERY)
    assert not after.cached
    assert after.version > before.version
    assert after.version == store.version
    # The sharded store's version listener swept the superseded entry
    # the moment the mutation landed — before the re-query.
    assert server.cache.stats.invalidations >= 1


def test_wal_replay_invalidates_cached_results(tmp_path):
    source = fill(ShardedTimeSeriesStore(
        n_shards=2, wal=tmp_path / "source.wal"))
    source.flush()
    # Disjoint hosts: replayed series append cleanly instead of landing
    # behind the target's existing timestamps.
    target = fill(ShardedTimeSeriesStore(n_shards=2), seed=1,
                  hosts=("t0", "t1"))
    with QueryServer(target) as server:
        before = server.query(GROUP_QUERY)
        replayed = source.wal.replay_into(target)
        assert replayed > 0
        after = server.query(GROUP_QUERY)
        assert not after.cached
        assert after.version > before.version
        assert server.cache.stats.invalidations >= 1
    source.close()


def test_plain_store_sweeps_lazily_on_next_request():
    store = fill(TimeSeriesStore())
    with QueryServer(store) as server:
        first = server.query(GROUP_QUERY)
        store.insert(SeriesId.make("late_metric"), 0, 1.0)
        second = server.query(GROUP_QUERY)
        assert not second.cached
        assert second.version > first.version
        # No version-bump hook on the plain store: the sweep happened
        # when the next request observed the new version.
        assert server.cache.stats.invalidations >= 1


def test_stale_cache_entry_never_served_after_version_moves(server, store):
    v0 = server.query(GROUP_QUERY).version
    store.insert(SeriesId.make("bump_metric"), 0, 1.0)
    for _ in range(5):
        result = server.query(GROUP_QUERY)
        assert result.version > v0


# ---------------------------------------------------------------------------
# Staleness + parity under concurrent ingest (the acceptance regression)
# ---------------------------------------------------------------------------

def test_no_stale_results_under_four_writer_ingest(store):
    stop = threading.Event()
    results, errors = [], []

    def writer(wid):
        # Append batches to one fixed series per writer (the store grows
        # in points, not series), throttled so every reader request sees
        # fresh versions without the store outgrowing the test.
        series = SeriesId.make("ingest_rate", {"host": f"w{wid}"})
        i = 0
        while not stop.is_set():
            ts = np.arange(i * 16, (i + 1) * 16, dtype=np.int64)
            store.insert_array(series, ts, np.full(16, float(i)))
            i += 1
            time.sleep(0.002)

    with QueryServer(store, n_workers=4) as server:
        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(25):
                floor = store.version
                result = server.query(GROUP_QUERY)
                # Pinned at request start: at least as new as any version
                # observed before submission — a result cached at some
                # superseded version can never come back.
                if result.version < floor:
                    errors.append((result.version, floor))
                results.append(result)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not errors
        versions = sorted({r.version for r in results})
        # Quiesced: the next request serves exactly the final version...
        final = server.query(GROUP_QUERY)
        assert final.version == store.version
        # ...and every mid-ingest result re-verifies bitwise against a
        # fresh computation on its own pinned snapshot.
        for result in [results[0], results[len(results) // 2], results[-1]]:
            check = Database()
            register_store(check, result.snapshot)
            assert result.snapshot.version == result.version
            assert_bitwise_equal(result.value, check.sql(GROUP_QUERY))
        assert versions[0] <= versions[-1]


# ---------------------------------------------------------------------------
# explain / drill_down serving
# ---------------------------------------------------------------------------

def rank_fields(table):
    return [(r.rank, r.family, struct.pack("<d", r.score))
            for r in table.results]


def test_explain_matches_direct_ranking(server, store):
    served = server.explain("target_metric", scorer="L2-P50")
    families = families_from_store(store.snapshot(), group_by="name")
    hypotheses = generate_hypotheses(families, "target_metric")
    direct = rank_families(hypotheses, scorer="L2-P50")
    assert rank_fields(served) == rank_fields(direct)


def test_repeat_explain_hits_cache(server):
    first = server.submit_explain("target_metric").result()
    second = server.submit_explain("target_metric").result()
    assert not first.cached and second.cached
    assert second.value is first.value


def test_drill_down_restricts_search_space(server):
    table = server.drill_down("target_metric",
                              ["cause_metric", "decoy_0"])
    assert {r.family for r in table.results} <= {"cause_metric", "decoy_0"}
    assert server.stats()["requests"]["drill_down"] == 1


def test_explain_cache_invalidated_by_ingest(server, store):
    first = server.submit_explain("target_metric").result()
    store.insert_array(SeriesId.make("target_metric", {"host": "h0"}),
                       np.arange(N, N + 8, dtype=np.int64), np.ones(8))
    second = server.submit_explain("target_metric").result()
    assert not second.cached
    assert second.version > first.version


def test_process_backend_publishes_matrices_once_per_version(store):
    with QueryServer(store, backend="process", rank_workers=2) as server:
        a = server.explain("target_metric", scorer="L2-P50")
        segments_after_first = server.stats()["shm_segments"]
        assert segments_after_first > 0
        # A different scorer misses the result cache but reuses the
        # already-published matrices: no new segments appear.
        b = server.explain("target_metric", scorer="L2")
        assert server.stats()["shm_segments"] == segments_after_first
        assert [r.family for r in a.results]  # both produced rankings
        assert [r.family for r in b.results]
        # Bitwise parity against the same backend run standalone (the
        # executor's own parity tests pin process == batch == thread).
        direct = rank_families(
            generate_hypotheses(
                families_from_store(store.snapshot(), group_by="name"),
                "target_metric"),
            scorer="L2-P50", backend="process", n_workers=2,
            transfer="shm")
        assert rank_fields(a) == rank_fields(direct)


def test_old_version_states_retire(store):
    with QueryServer(store, keep_versions=1) as server:
        server.sql(GROUP_QUERY)
        store.insert(SeriesId.make("bump_metric"), 0, 1.0)
        server.sql(GROUP_QUERY)
        store.insert(SeriesId.make("bump_metric"), 1, 2.0)
        server.sql(GROUP_QUERY)
        warm = server.stats()["warm_versions"]
        assert warm == [store.version]


def test_stats_shape(server):
    server.sql(GROUP_QUERY)
    stats = server.stats()
    assert stats["requests"]["sql"] == 1
    assert stats["cache"]["misses"] >= 1
    assert stats["store_version"] == stats["warm_versions"][-1]
    assert stats["uptime_seconds"] >= 0.0
