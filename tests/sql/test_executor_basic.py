"""Executor tests: projection, filtering, ordering, NULL semantics."""

import pytest

from repro.sql import Database, ExecutionError, Table


class TestProjection:
    def test_select_star(self, db):
        result = db.sql("SELECT * FROM people")
        assert result.columns == ["name", "age", "city"]
        assert len(result) == 4

    def test_select_columns(self, db):
        result = db.sql("SELECT name, age FROM people")
        assert result.columns == ["name", "age"]

    def test_expression_projection(self, db):
        result = db.sql("SELECT age * 2 AS double_age FROM people "
                        "ORDER BY double_age")
        assert result.column("double_age") == [56, 56, 68, 82]

    def test_select_without_from(self, db):
        assert db.sql("SELECT 1 + 2 AS x").rows == [(3,)]

    def test_derived_column_names(self, db):
        result = db.sql("SELECT UPPER(name) FROM people LIMIT 1")
        assert result.columns == ["UPPER(name)"]

    def test_qualified_star(self, db):
        result = db.sql("SELECT p.* FROM people p")
        assert result.columns == ["name", "age", "city"]


class TestWhere:
    def test_equality(self, db):
        result = db.sql("SELECT name FROM people WHERE city = 'berlin'")
        assert result.rows == [("bob",)]

    def test_comparison(self, db):
        result = db.sql("SELECT name FROM people WHERE age > 30 "
                        "ORDER BY name")
        assert result.column("name") == ["alice", "carol"]

    def test_between(self, db):
        result = db.sql("SELECT name FROM people WHERE age BETWEEN 28 "
                        "AND 34 ORDER BY name")
        assert result.column("name") == ["alice", "bob", "dave"]

    def test_in_list(self, db):
        result = db.sql("SELECT name FROM people WHERE name IN "
                        "('alice', 'dave') ORDER BY name")
        assert len(result) == 2

    def test_not_in(self, db):
        result = db.sql("SELECT name FROM people WHERE name NOT IN "
                        "('alice', 'bob', 'carol')")
        assert result.rows == [("dave",)]

    def test_like(self, db):
        result = db.sql("SELECT name FROM people WHERE name LIKE '%a%' "
                        "ORDER BY name")
        assert result.column("name") == ["alice", "carol", "dave"]

    def test_like_underscore(self, db):
        result = db.sql("SELECT name FROM people WHERE name LIKE 'b_b'")
        assert result.rows == [("bob",)]

    def test_null_comparison_filters_row(self, db):
        # city = NULL row: comparison yields NULL -> filtered out
        result = db.sql("SELECT name FROM people WHERE city <> 'berlin' "
                        "ORDER BY name")
        assert result.column("name") == ["alice", "carol"]

    def test_is_null(self, db):
        result = db.sql("SELECT name FROM people WHERE city IS NULL")
        assert result.rows == [("dave",)]

    def test_is_not_null(self, db):
        assert len(db.sql(
            "SELECT name FROM people WHERE city IS NOT NULL")) == 3

    def test_and_or_three_valued(self, db):
        # NULL OR TRUE is TRUE; NULL AND TRUE is NULL (filtered).
        result = db.sql("SELECT name FROM people WHERE city = 'nowhere' "
                        "OR age = 28 ORDER BY name")
        assert result.column("name") == ["bob", "dave"]


class TestOrderLimit:
    def test_order_desc(self, db):
        result = db.sql("SELECT name FROM people ORDER BY age DESC, name")
        assert result.column("name") == ["carol", "alice", "bob", "dave"]

    def test_order_by_alias(self, db):
        result = db.sql("SELECT age * -1 AS neg FROM people ORDER BY neg")
        assert result.column("neg") == [-41, -34, -28, -28]

    def test_order_by_position(self, db):
        result = db.sql("SELECT name, age FROM people ORDER BY 2, 1")
        assert result.column("name") == ["bob", "dave", "alice", "carol"]

    def test_nulls_sort_first(self, db):
        result = db.sql("SELECT city FROM people ORDER BY city")
        assert result.column("city")[0] is None

    def test_limit(self, db):
        assert len(db.sql("SELECT * FROM people LIMIT 2")) == 2

    def test_offset(self, db):
        result = db.sql("SELECT name FROM people ORDER BY name "
                        "LIMIT 2 OFFSET 1")
        assert result.column("name") == ["bob", "carol"]

    def test_distinct(self, db):
        result = db.sql("SELECT DISTINCT age FROM people ORDER BY age")
        assert result.column("age") == [28, 34, 41]


class TestCaseAndCast:
    def test_case(self, db):
        result = db.sql(
            "SELECT name, CASE WHEN age > 30 THEN 'old' ELSE 'young' END "
            "AS bucket FROM people ORDER BY name")
        assert result.column("bucket") == ["old", "young", "old", "young"]

    def test_case_no_default_gives_null(self, db):
        result = db.sql(
            "SELECT CASE WHEN age > 100 THEN 'x' END AS c FROM people")
        assert result.column("c") == [None] * 4

    def test_cast(self, db):
        result = db.sql("SELECT CAST(age AS STRING) s FROM people "
                        "ORDER BY s LIMIT 1")
        assert result.rows == [("28",)]

    def test_cast_to_double(self, db):
        result = db.sql("SELECT CAST('2.5' AS DOUBLE) x")
        assert result.rows == [(2.5,)]


class TestArithmetic:
    def test_division_by_zero_is_null(self, db):
        assert db.sql("SELECT 1 / 0 AS x").rows == [(None,)]

    def test_modulo(self, db):
        assert db.sql("SELECT 7 % 3 AS x").rows == [(1,)]

    def test_string_concat_operator(self, db):
        assert db.sql("SELECT 'a' || 'b' AS x").rows == [("ab",)]

    def test_null_propagation(self, db):
        assert db.sql("SELECT 1 + NULL AS x").rows == [(None,)]


class TestErrors:
    def test_unknown_table(self, db):
        with pytest.raises(Exception):
            db.sql("SELECT * FROM missing")

    def test_unknown_column(self, db):
        with pytest.raises(Exception):
            db.sql("SELECT nope FROM people")

    def test_aggregate_in_where_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.sql("SELECT name FROM people WHERE AVG(age) > 1")

    def test_unknown_function(self, db):
        with pytest.raises(ExecutionError):
            db.sql("SELECT FROBNICATE(name) FROM people")


class TestSubqueries:
    def test_subquery_in_from(self, db):
        result = db.sql(
            "SELECT name FROM (SELECT name, age FROM people "
            "WHERE age > 30) old ORDER BY name")
        assert result.column("name") == ["alice", "carol"]

    def test_nested_subqueries(self, db):
        result = db.sql(
            "SELECT n FROM (SELECT name AS n FROM "
            "(SELECT name FROM people WHERE age = 41) inner1) outer1")
        assert result.rows == [("carol",)]
