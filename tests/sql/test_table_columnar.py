"""Unit tests for the columnar Table construction path."""

import numpy as np
import pytest

from repro.sql.errors import SchemaError
from repro.sql.table import Table


def _columnar():
    return Table.from_columns(
        ["t", "name", "v"],
        [np.arange(4, dtype=np.int64),
         ["a", "b", "a", "b"],
         np.asarray([0.5, 1.5, 2.5, 3.5])])


class TestFromColumns:
    def test_len_without_materialising(self):
        table = _columnar()
        assert len(table) == 4
        assert not table.is_materialised()

    def test_rows_materialise_with_python_cells(self):
        table = _columnar()
        assert table.rows == [(0, "a", 0.5), (1, "b", 1.5),
                              (2, "a", 2.5), (3, "b", 3.5)]
        assert type(table.rows[0][0]) is int
        assert type(table.rows[0][2]) is float
        assert table.is_materialised()

    def test_equals_row_built_table(self):
        rows = [(0, "a", 0.5), (1, "b", 1.5), (2, "a", 2.5), (3, "b", 3.5)]
        assert _columnar() == Table(["t", "name", "v"], rows)

    def test_column_reads_skip_materialisation(self):
        table = _columnar()
        assert table.column("name") == ["a", "b", "a", "b"]
        assert table.column("v") == [0.5, 1.5, 2.5, 3.5]
        assert not table.is_materialised()

    def test_select_rename_prefix_stay_columnar(self):
        table = _columnar()
        projected = table.select_columns(["v", "t"])
        renamed = table.rename({"v": "value"})
        prefixed = table.prefixed("x")
        assert not table.is_materialised()
        assert not projected.is_materialised()
        assert projected.rows == [(0.5, 0), (1.5, 1), (2.5, 2), (3.5, 3)]
        assert renamed.columns == ["t", "name", "value"]
        assert renamed.rows == table.rows
        assert prefixed.columns == ["x.t", "x.name", "x.v"]

    def test_row_api_interoperates(self):
        table = _columnar()
        filtered = table.filter(lambda row: row["name"] == "a")
        assert filtered.rows == [(0, "a", 0.5), (2, "a", 2.5)]
        assert table.union_all(table.limit(1)).rows[-1] == (0, "a", 0.5)
        assert list(iter(table))[0] == (0, "a", 0.5)

    def test_empty_columns(self):
        table = Table.from_columns(["a", "b"], [[], np.empty(0)])
        assert len(table) == 0
        assert table.rows == []

    def test_unequal_lengths_rejected(self):
        with pytest.raises(SchemaError, match="unequal lengths"):
            Table.from_columns(["a", "b"], [[1, 2], [1.0]])

    def test_wrong_vector_count_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_columns(["a", "b"], [[1, 2]])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Table.from_columns(["a", "a"], [[1], [2]])

    def test_object_cells_pass_through(self):
        tags = {"host": "h1"}
        col = np.empty(2, dtype=object)
        col[:] = [tags, tags]
        table = Table.from_columns(["tag"], [col])
        assert table.rows == [(tags,), (tags,)]
        assert table.rows[0][0] is tags

    def test_row_built_tables_unchanged(self):
        table = Table(["a"], [(1,), (2,)])
        assert table.is_materialised()
        assert len(table) == 2
