"""Database scan/stats caches: per-provider bounds + version eviction."""

import numpy as np

from repro.sql import Database
from repro.sql.catalog import _SCAN_CACHE_SIZE
from repro.sql.scan import ScanPredicate
from repro.tsdb.adapter import register_store
from repro.tsdb.model import SeriesId
from repro.tsdb.storage import TimeSeriesStore


def make_store(n_series=4, n=128):
    store = TimeSeriesStore()
    ts = np.arange(n, dtype=np.int64)
    for i in range(n_series):
        store.insert_array(SeriesId.make(f"metric_{i}", {"host": f"h{i}"}),
                           ts, np.linspace(0.0, float(i + 1), n))
    return store


def pred(lo, hi):
    return ScanPredicate(ranges=(("timestamp", lo, hi),))


def test_scan_cache_hit_on_repeat_predicate():
    db = Database()
    register_store(db, make_store())
    first = db.scan_table("tsdb", pred(0, 10))
    second = db.scan_table("tsdb", pred(0, 10))
    assert first is not None
    assert second[0] is first[0]
    info = db.cache_info()
    assert info["scan_hits"] == 1 and info["scan_misses"] == 1


def test_scan_cache_bounded_per_provider():
    db = Database()
    register_store(db, make_store(), name="hot")
    register_store(db, make_store(), name="cold")
    db.scan_table("hot", pred(0, 1))
    # A predicate storm on "cold" overflows only its own LRU...
    for i in range(3 * _SCAN_CACHE_SIZE):
        db.scan_table("cold", pred(i, i + 1))
    info = db.cache_info()
    assert info["scan_entries"]["cold"] == _SCAN_CACHE_SIZE
    # ...while "hot"'s entry survives untouched and still hits.
    assert info["scan_entries"]["hot"] == 1
    before = info["scan_hits"]
    db.scan_table("hot", pred(0, 1))
    assert db.cache_info()["scan_hits"] == before + 1


def test_superseded_version_entries_evicted_on_next_scan():
    db = Database()
    store = make_store()
    register_store(db, store)
    for i in range(4):
        db.scan_table("tsdb", pred(i, i + 10))
    assert db.cache_info()["scan_entries"]["tsdb"] == 4
    store.insert(SeriesId.make("metric_0", {"host": "h0"}), 10_000, 1.0)
    db.scan_table("tsdb", pred(0, 10))
    # The version moved: every old-version entry is gone, only the new
    # scan remains — no squatting until LRU pressure.
    assert db.cache_info()["scan_entries"]["tsdb"] == 1


def test_scan_results_track_store_version():
    db = Database()
    store = make_store(n_series=1)
    register_store(db, store)
    table, _ = db.scan_table("tsdb", pred(0, 10_000))
    rows_before = len(table)
    store.insert(SeriesId.make("metric_0", {"host": "h0"}), 10_000, 42.0)
    table, _ = db.scan_table("tsdb", pred(0, 10_000))
    assert len(table) == rows_before + 1


def test_drop_clears_provider_caches():
    db = Database()
    register_store(db, make_store())
    db.scan_table("tsdb", pred(0, 10))
    db.sql("SELECT COUNT(*) FROM tsdb")
    db.drop("tsdb")
    assert db.cache_info()["scan_entries"] == {}
