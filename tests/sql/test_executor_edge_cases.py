"""Edge-case coverage for the SQL executor."""

import pytest

from repro.sql import Database, ExecutionError, Table
from repro.sql.errors import SchemaError


@pytest.fixture
def edge_db() -> Database:
    db = Database()
    db.register("t", Table(["k", "v", "s"], [
        ("a", 1, "x"), ("b", None, "y"), ("c", 3, None), ("a", 4, "x"),
    ]))
    return db


class TestNullEdgeCases:
    def test_in_list_with_null_candidate(self, edge_db):
        # v IN (1, NULL): true for v=1, NULL (filtered) otherwise.
        result = edge_db.sql("SELECT k FROM t WHERE v IN (1, NULL)")
        assert result.rows == [("a",)]

    def test_not_in_with_null_candidate_matches_nothing(self, edge_db):
        result = edge_db.sql("SELECT k FROM t WHERE v NOT IN (1, NULL)")
        assert result.rows == []

    def test_null_in_group_key_forms_its_own_group(self, edge_db):
        result = edge_db.sql(
            "SELECT s, COUNT(*) c FROM t GROUP BY s ORDER BY c DESC, s")
        assert ("x", 2) in result.rows
        assert (None, 1) in result.rows

    def test_between_with_null_bound(self, edge_db):
        result = edge_db.sql(
            "SELECT k FROM t WHERE v BETWEEN NULL AND 10")
        assert result.rows == []

    def test_coalesce_in_order_by(self, edge_db):
        result = edge_db.sql(
            "SELECT k, COALESCE(v, 0) cv FROM t ORDER BY COALESCE(v, 0)")
        assert result.column("cv") == [0, 1, 3, 4]


class TestExpressionsInGroupBy:
    def test_case_in_group_by(self, edge_db):
        result = edge_db.sql("""
            SELECT CASE WHEN v IS NULL THEN 'missing' ELSE 'present' END
                       AS status,
                   COUNT(*) c
            FROM t GROUP BY CASE WHEN v IS NULL THEN 'missing'
                            ELSE 'present' END
            ORDER BY status
        """)
        assert result.rows == [("missing", 1), ("present", 3)]

    def test_nested_functions_in_group_by(self, edge_db):
        result = edge_db.sql(
            "SELECT UPPER(COALESCE(s, 'z')) g, COUNT(*) c FROM t "
            "GROUP BY UPPER(COALESCE(s, 'z')) ORDER BY g")
        assert result.column("g") == ["X", "Y", "Z"]


class TestMiscBehaviour:
    def test_limit_zero(self, edge_db):
        assert len(edge_db.sql("SELECT * FROM t LIMIT 0")) == 0

    def test_offset_beyond_end(self, edge_db):
        assert len(edge_db.sql(
            "SELECT * FROM t ORDER BY k LIMIT 10 OFFSET 99")) == 0

    def test_cross_type_comparison_raises(self, edge_db):
        with pytest.raises(ExecutionError):
            edge_db.sql("SELECT k FROM t WHERE s > 1")

    def test_select_distinct_on_map_cells(self):
        db = Database()
        db.register("m", Table(["tag"], [
            ({"a": 1},), ({"a": 1},), ({"b": 2},)]))
        assert len(db.sql("SELECT DISTINCT tag FROM m")) == 2

    def test_table_case_insensitive_lookup(self, edge_db):
        assert len(edge_db.sql("SELECT * FROM T")) == 4

    def test_drop_table(self, edge_db):
        edge_db.drop("t")
        with pytest.raises(SchemaError):
            edge_db.sql("SELECT * FROM t")

    def test_provider_materialised_once(self):
        db = Database()
        calls = []

        def provider():
            calls.append(1)
            return Table(["x"], [(1,)])

        db.register_provider("lazy", provider)
        db.sql("SELECT * FROM lazy")
        db.sql("SELECT * FROM lazy")
        assert len(calls) == 1

    def test_register_overwrites_provider(self):
        db = Database()
        db.register_provider("x", lambda: Table(["a"], [(1,)]))
        db.register("x", Table(["a"], [(2,)]))
        assert db.sql("SELECT a FROM x").rows == [(2,)]

    def test_having_with_arithmetic(self, edge_db):
        result = edge_db.sql(
            "SELECT k, SUM(v) s FROM t WHERE v IS NOT NULL GROUP BY k "
            "HAVING SUM(v) * 2 > 5 ORDER BY k")
        assert result.column("k") == ["a", "c"]

    def test_order_by_expression_on_source_columns(self, edge_db):
        result = edge_db.sql(
            "SELECT k FROM t WHERE v IS NOT NULL ORDER BY v * -1")
        assert result.column("k") == ["a", "c", "a"]

    def test_union_of_selects_with_exprs(self, edge_db):
        result = edge_db.sql(
            "SELECT MAX(v) FROM t UNION ALL SELECT MIN(v) FROM t")
        assert sorted(r[0] for r in result.rows) == [1, 4]
