"""Edge-case coverage for the SQL executor."""

import pytest

from repro.sql import Database, ExecutionError, Table
from repro.sql.errors import SchemaError


@pytest.fixture
def edge_db() -> Database:
    db = Database()
    db.register("t", Table(["k", "v", "s"], [
        ("a", 1, "x"), ("b", None, "y"), ("c", 3, None), ("a", 4, "x"),
    ]))
    return db


class TestNullEdgeCases:
    def test_in_list_with_null_candidate(self, edge_db):
        # v IN (1, NULL): true for v=1, NULL (filtered) otherwise.
        result = edge_db.sql("SELECT k FROM t WHERE v IN (1, NULL)")
        assert result.rows == [("a",)]

    def test_not_in_with_null_candidate_matches_nothing(self, edge_db):
        result = edge_db.sql("SELECT k FROM t WHERE v NOT IN (1, NULL)")
        assert result.rows == []

    def test_null_in_group_key_forms_its_own_group(self, edge_db):
        result = edge_db.sql(
            "SELECT s, COUNT(*) c FROM t GROUP BY s ORDER BY c DESC, s")
        assert ("x", 2) in result.rows
        assert (None, 1) in result.rows

    def test_between_with_null_bound(self, edge_db):
        result = edge_db.sql(
            "SELECT k FROM t WHERE v BETWEEN NULL AND 10")
        assert result.rows == []

    def test_coalesce_in_order_by(self, edge_db):
        result = edge_db.sql(
            "SELECT k, COALESCE(v, 0) cv FROM t ORDER BY COALESCE(v, 0)")
        assert result.column("cv") == [0, 1, 3, 4]


class TestExpressionsInGroupBy:
    def test_case_in_group_by(self, edge_db):
        result = edge_db.sql("""
            SELECT CASE WHEN v IS NULL THEN 'missing' ELSE 'present' END
                       AS status,
                   COUNT(*) c
            FROM t GROUP BY CASE WHEN v IS NULL THEN 'missing'
                            ELSE 'present' END
            ORDER BY status
        """)
        assert result.rows == [("missing", 1), ("present", 3)]

    def test_nested_functions_in_group_by(self, edge_db):
        result = edge_db.sql(
            "SELECT UPPER(COALESCE(s, 'z')) g, COUNT(*) c FROM t "
            "GROUP BY UPPER(COALESCE(s, 'z')) ORDER BY g")
        assert result.column("g") == ["X", "Y", "Z"]


class TestMiscBehaviour:
    def test_limit_zero(self, edge_db):
        assert len(edge_db.sql("SELECT * FROM t LIMIT 0")) == 0

    def test_offset_beyond_end(self, edge_db):
        assert len(edge_db.sql(
            "SELECT * FROM t ORDER BY k LIMIT 10 OFFSET 99")) == 0

    def test_cross_type_comparison_raises(self, edge_db):
        with pytest.raises(ExecutionError):
            edge_db.sql("SELECT k FROM t WHERE s > 1")

    def test_select_distinct_on_map_cells(self):
        db = Database()
        db.register("m", Table(["tag"], [
            ({"a": 1},), ({"a": 1},), ({"b": 2},)]))
        assert len(db.sql("SELECT DISTINCT tag FROM m")) == 2

    def test_union_applies_offset(self, edge_db):
        # Regression: UNION used to drop OFFSET on the merged result.
        result = edge_db.sql(
            "SELECT k FROM t UNION ALL SELECT k FROM t "
            "ORDER BY k LIMIT 3 OFFSET 2")
        assert result.column("k") == ["a", "a", "b"]

    def test_union_offset_without_limit(self, edge_db):
        result = edge_db.sql(
            "SELECT k FROM t UNION SELECT k FROM t ORDER BY k OFFSET 1")
        assert result.column("k") == ["b", "c"]


class TestOrderByNan:
    def test_nan_sorts_after_numbers_transitively(self):
        # Regression: NaN keys made _SortKey non-transitive, so output
        # depended on comparison order ([5.0, nan, 1.0] could keep 5.0
        # before 1.0).  NaN now ranks in its own bucket above numbers.
        db = Database()
        db.register("f", Table(["x"], [
            (5.0,), (float("nan"),), (1.0,), (3.0,), (float("nan"),)]))
        got = db.sql("SELECT x FROM f ORDER BY x").column("x")
        assert got[:3] == [1.0, 3.0, 5.0]
        assert all(v != v for v in got[3:])

    def test_nan_sorts_before_numbers_descending(self):
        db = Database()
        db.register("f", Table(["x"], [
            (2.0,), (float("nan"),), (7.0,)]))
        got = db.sql("SELECT x FROM f ORDER BY x DESC").column("x")
        assert got[0] != got[0]          # NaN first under DESC
        assert got[1:] == [7.0, 2.0]


class TestWindowOrdering:
    def test_window_desc_order(self):
        # Regression guard for the single-sort _window_column rewrite:
        # DESC inside OVER(...) must order the frame, not the output.
        db = Database()
        db.register("w", Table(["g", "ts", "v"], [
            ("a", 1, 10.0), ("a", 2, 20.0), ("b", 1, 5.0),
            ("a", 3, 30.0), ("b", 2, 15.0)]))
        result = db.sql(
            "SELECT g, ts, ROW_NUMBER() OVER "
            "(PARTITION BY g ORDER BY ts DESC) AS rn FROM w")
        by_key = {(g, ts): rn for g, ts, rn in result.rows}
        assert by_key == {("a", 3): 1, ("a", 2): 2, ("a", 1): 3,
                          ("b", 2): 1, ("b", 1): 2}
        # Output row order is untouched by the frame sort.
        assert [(g, ts) for g, ts, _ in result.rows] == [
            ("a", 1), ("a", 2), ("b", 1), ("a", 3), ("b", 2)]

    def test_table_case_insensitive_lookup(self, edge_db):
        assert len(edge_db.sql("SELECT * FROM T")) == 4

    def test_drop_table(self, edge_db):
        edge_db.drop("t")
        with pytest.raises(SchemaError):
            edge_db.sql("SELECT * FROM t")

    def test_provider_materialised_once(self):
        db = Database()
        calls = []

        def provider():
            calls.append(1)
            return Table(["x"], [(1,)])

        db.register_provider("lazy", provider)
        db.sql("SELECT * FROM lazy")
        db.sql("SELECT * FROM lazy")
        assert len(calls) == 1

    def test_register_overwrites_provider(self):
        db = Database()
        db.register_provider("x", lambda: Table(["a"], [(1,)]))
        db.register("x", Table(["a"], [(2,)]))
        assert db.sql("SELECT a FROM x").rows == [(2,)]

    def test_having_with_arithmetic(self, edge_db):
        result = edge_db.sql(
            "SELECT k, SUM(v) s FROM t WHERE v IS NOT NULL GROUP BY k "
            "HAVING SUM(v) * 2 > 5 ORDER BY k")
        assert result.column("k") == ["a", "c"]

    def test_order_by_expression_on_source_columns(self, edge_db):
        result = edge_db.sql(
            "SELECT k FROM t WHERE v IS NOT NULL ORDER BY v * -1")
        assert result.column("k") == ["a", "c", "a"]

    def test_union_of_selects_with_exprs(self, edge_db):
        result = edge_db.sql(
            "SELECT MAX(v) FROM t UNION ALL SELECT MIN(v) FROM t")
        assert sorted(r[0] for r in result.rows) == [1, 4]
