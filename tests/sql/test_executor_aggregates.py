"""Executor tests: GROUP BY, HAVING, aggregates, window functions."""

import pytest

from repro.sql import Database, ExecutionError, Table


class TestGroupBy:
    def test_group_by_column(self, db):
        result = db.sql("SELECT city, COUNT(*) c FROM people "
                        "GROUP BY city ORDER BY c DESC, city")
        assert result.rows == [("amsterdam", 2), (None, 1), ("berlin", 1)]

    def test_group_by_expression(self, db):
        result = db.sql(
            "SELECT age % 2 AS parity, COUNT(*) c FROM people "
            "GROUP BY age % 2 ORDER BY parity")
        assert result.rows == [(0, 3), (1, 1)]

    def test_multiple_aggregates(self, db):
        result = db.sql(
            "SELECT MIN(age) lo, MAX(age) hi, AVG(age) m, SUM(age) s "
            "FROM people")
        assert result.rows == [(28, 41, 32.75, 131.0)]

    def test_global_aggregate_without_group(self, db):
        assert db.sql("SELECT COUNT(*) FROM people").rows == [(4,)]

    def test_count_column_skips_nulls(self, db):
        assert db.sql("SELECT COUNT(city) FROM people").rows == [(3,)]

    def test_count_distinct(self, db):
        assert db.sql(
            "SELECT COUNT(DISTINCT age) FROM people").rows == [(3,)]

    def test_avg_skips_nulls(self):
        db = Database()
        db.register("t", Table(["v"], [(2.0,), (None,), (4.0,)]))
        assert db.sql("SELECT AVG(v) FROM t").rows == [(3.0,)]

    def test_aggregate_of_empty_group(self):
        db = Database()
        db.register("t", Table.empty(["v"]))
        assert db.sql("SELECT AVG(v) a, COUNT(*) c FROM t").rows == [
            (None, 0)]

    def test_stddev_and_variance(self):
        db = Database()
        db.register("t", Table(["v"], [(1.0,), (2.0,), (3.0,)]))
        row = db.sql("SELECT STDDEV(v) s, VARIANCE(v) v2 FROM t").rows[0]
        assert row[0] == pytest.approx(1.0)
        assert row[1] == pytest.approx(1.0)

    def test_percentile(self):
        db = Database()
        db.register("t", Table(["v"], [(float(i),) for i in range(1, 101)]))
        row = db.sql("SELECT PERCENTILE(v, 0.99) p FROM t").rows[0]
        assert row[0] == pytest.approx(99.01)

    def test_percentile_fraction_out_of_range(self):
        db = Database()
        db.register("t", Table(["v"], [(1.0,)]))
        with pytest.raises(ExecutionError):
            db.sql("SELECT PERCENTILE(v, 50) FROM t")

    def test_scalar_around_aggregate(self, db):
        result = db.sql("SELECT GREATEST(MAX(age), 100) g FROM people")
        assert result.rows == [(100,)]

    def test_arithmetic_on_aggregates(self, db):
        result = db.sql("SELECT MAX(age) - MIN(age) spread FROM people")
        assert result.rows == [(13,)]

    def test_select_star_with_group_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.sql("SELECT * FROM people GROUP BY city")


class TestHaving:
    def test_having_on_aggregate(self, db):
        result = db.sql(
            "SELECT city, COUNT(*) c FROM people GROUP BY city "
            "HAVING COUNT(*) > 1")
        assert result.rows == [("amsterdam", 2)]

    def test_having_on_alias(self, db):
        result = db.sql(
            "SELECT city, COUNT(*) c FROM people GROUP BY city "
            "HAVING c > 1")
        assert result.rows == [("amsterdam", 2)]

    def test_having_without_group_by(self, db):
        assert db.sql(
            "SELECT COUNT(*) c FROM people HAVING COUNT(*) > 10").rows == []


class TestGroupOrdering:
    def test_order_by_aggregate(self, db):
        result = db.sql(
            "SELECT customer, SUM(amount) total FROM orders "
            "GROUP BY customer ORDER BY SUM(amount) DESC")
        assert result.column("customer") == ["alice", "bob", "erin"]

    def test_order_by_group_key(self, db):
        result = db.sql(
            "SELECT customer, SUM(amount) t FROM orders "
            "GROUP BY customer ORDER BY customer")
        assert result.column("customer") == ["alice", "bob", "erin"]


class TestWindowFunctions:
    @pytest.fixture
    def ts_db(self):
        db = Database()
        db.register("series", Table(
            ["host", "ts", "v"],
            [("a", 1, 10.0), ("a", 2, 20.0), ("a", 3, 30.0),
             ("b", 1, 5.0), ("b", 2, 15.0)],
        ))
        return db

    def test_lag(self, ts_db):
        result = ts_db.sql(
            "SELECT ts, LAG(v, 1) OVER (ORDER BY ts) prev FROM series "
            "WHERE host = 'a' ORDER BY ts")
        assert result.column("prev") == [None, 10.0, 20.0]

    def test_lag_with_default(self, ts_db):
        result = ts_db.sql(
            "SELECT ts, LAG(v, 1, 0.0) OVER (ORDER BY ts) prev "
            "FROM series WHERE host = 'a' ORDER BY ts")
        assert result.column("prev") == [0.0, 10.0, 20.0]

    def test_lead(self, ts_db):
        result = ts_db.sql(
            "SELECT ts, LEAD(v, 1) OVER (ORDER BY ts) nxt FROM series "
            "WHERE host = 'a' ORDER BY ts")
        assert result.column("nxt") == [20.0, 30.0, None]

    def test_lag_partitioned(self, ts_db):
        result = ts_db.sql(
            "SELECT host, ts, LAG(v, 1) OVER "
            "(PARTITION BY host ORDER BY ts) prev FROM series "
            "ORDER BY host, ts")
        assert result.column("prev") == [None, 10.0, 20.0, None, 5.0]

    def test_row_number(self, ts_db):
        result = ts_db.sql(
            "SELECT host, ROW_NUMBER() OVER "
            "(PARTITION BY host ORDER BY ts DESC) rn FROM series "
            "ORDER BY host, rn")
        assert result.column("rn") == [1, 2, 3, 1, 2]

    def test_moving_avg(self, ts_db):
        result = ts_db.sql(
            "SELECT ts, MOVING_AVG(v, 2) OVER (ORDER BY ts) m "
            "FROM series WHERE host = 'a' ORDER BY ts")
        assert result.column("m") == [10.0, 15.0, 25.0]

    def test_rank(self, ts_db):
        result = ts_db.sql(
            "SELECT v, RANK() OVER (ORDER BY v) r FROM series "
            "WHERE host = 'a' ORDER BY v")
        # RANK's argument-free form ranks by first arg; with no args the
        # engine ranks by position — verify it is monotone.
        assert result.column("r") == sorted(result.column("r"))
