"""Unit tests for EXPLAIN plan rendering."""

import pytest

from repro.sql import Database, Table


@pytest.fixture
def db2() -> Database:
    db = Database()
    db.register("l", Table(["k", "v"], [("a", 1)]))
    db.register("r", Table(["k", "w"], [("a", 2)]))
    return db


class TestExplain:
    def test_simple_scan(self, db2):
        plan = db2.explain("SELECT v FROM l WHERE v > 0")
        assert "Project(v)" in plan
        assert "Filter((v > 0))" in plan
        assert "Scan(l)" in plan

    def test_join_plan_shows_pushed_filters(self, db2):
        plan = db2.explain(
            "SELECT l.v FROM l JOIN r ON l.k = r.k WHERE l.v > 1")
        assert "InnerJoin" in plan
        # The optimizer pushed the filter beneath the join.
        assert "Subquery" in plan
        assert "Filter((l.v > 1))" in plan

    def test_unoptimised_database_keeps_filter_on_top(self):
        db = Database(optimize_queries=False)
        db.register("l", Table(["k", "v"], [("a", 1)]))
        db.register("r", Table(["k", "w"], [("a", 2)]))
        plan = db.explain(
            "SELECT l.v FROM l JOIN r ON l.k = r.k WHERE l.v > 1")
        assert "Subquery" not in plan

    def test_aggregate_plan(self, db2):
        plan = db2.explain(
            "SELECT k, COUNT(*) c FROM l GROUP BY k HAVING COUNT(*) > 1 "
            "ORDER BY k LIMIT 5")
        assert "Aggregate(groupBy=k)" in plan
        assert "Having" in plan
        assert "Sort(k)" in plan
        assert "limit=5" in plan

    def test_union_plan(self, db2):
        plan = db2.explain("SELECT k FROM l UNION ALL SELECT k FROM r")
        assert "UnionAll" in plan
        assert plan.count("Scan") == 2

    def test_no_from(self, db2):
        plan = db2.explain("SELECT 1 + 1 AS x")
        assert "OneRow" in plan

    def test_indentation_reflects_depth(self, db2):
        plan = db2.explain("SELECT l.v FROM l JOIN r ON l.k = r.k")
        lines = plan.splitlines()
        project_indent = len(lines[0]) - len(lines[0].lstrip())
        join_line = next(l for l in lines if "InnerJoin" in l)
        join_indent = len(join_line) - len(join_line.lstrip())
        assert join_indent > project_indent
