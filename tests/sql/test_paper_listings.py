"""The paper's Appendix C SQL listings, run verbatim on the engine.

These are the flagship fidelity tests for the declarative layer: each
listing (modulo the T1/T2 time-range parameters, which are bound to
literals) must parse and produce the documented shape.
"""

import pytest

from repro.sql import Database, Table
from repro.tsdb import SeriesId, TimeSeriesStore
from repro.tsdb.adapter import register_store


@pytest.fixture
def paper_db() -> Database:
    store = TimeSeriesStore()
    for pipe in ("p1", "p2"):
        sid_rt = SeriesId.make("pipeline_runtime", {"pipeline_name": pipe})
        sid_in = SeriesId.make("pipeline_input_rate",
                               {"pipeline_name": pipe})
        for t in range(20):
            store.insert(sid_rt, t, 10.0 + t + (5 if pipe == "p2" else 0))
            store.insert(sid_in, t, 100.0 + 2 * t)
    db = Database()
    register_store(db, store)
    db.register("flows", Table(
        ["timestamp", "src_address", "service_port", "dst_port", "pkts",
         "bytes", "network_latency", "retransmissions",
         "handshake_latency", "burstiness"],
        [
            (0, "10.0.0.1", "80", "80", 100, 1000, 1.0, 2, 0.5, 0.1),
            (0, "10.0.0.2", "80", "80", 150, 1500, 2.0, 1, 0.6, 0.2),
            (1, "10.0.0.1", "80", "80", 120, 1200, 1.5, 0, 0.4, 0.3),
        ],
    ))
    db.register("processes", Table(
        ["timestamp", "service_name", "hostname", "stime", "utime",
         "statm_resident", "read_b", "write_b", "cancelled_write_b"],
        [
            (0, "svc1", "web-1", 1.0, 2.0, 100.0, 10.0, 20.0, 5.0),
            (0, "svc2", "app-1", 2.0, 3.0, 200.0, 15.0, 10.0, 30.0),
            (1, "svc1", "web-2", 1.5, 2.5, 120.0, 12.0, 25.0, 0.0),
            (1, "svc3", "db-1", 9.0, 9.0, 500.0, 90.0, 80.0, 0.0),
            (1, "svc4", "cache-1", 9.0, 9.0, 500.0, 90.0, 80.0, 0.0),
        ],
    ))
    return db


class TestListing1TargetMetric:
    def test_target_family_query(self, paper_db):
        result = paper_db.sql("""
            SELECT
                timestamp, tag['pipeline_name'],
                AVG(value) as runtime_sec
            FROM tsdb
            WHERE metric_name = 'pipeline_runtime'
                AND timestamp BETWEEN 5 and 10
            GROUP BY timestamp, tag['pipeline_name']
            ORDER BY timestamp ASC
        """)
        assert len(result) == 12      # 6 timestamps x 2 pipelines
        assert result.columns[-1] == "runtime_sec"
        first = result.rows[0]
        assert first[0] == 5

    def test_result_usable_as_temp_table(self, paper_db):
        paper_db.create_temp_table("Target", """
            SELECT timestamp, tag['pipeline_name'] AS pipeline_name,
                   AVG(value) as runtime_sec
            FROM tsdb
            WHERE metric_name = 'pipeline_runtime'
            GROUP BY timestamp, tag['pipeline_name']
            ORDER BY timestamp ASC
        """)
        count = paper_db.sql("SELECT COUNT(*) FROM Target")
        assert count.rows == [(40,)]


class TestListing2NetworkFeatures:
    def test_network_feature_query(self, paper_db):
        result = paper_db.sql("""
            SELECT
                timestamp, CONCAT(src_address, service_port),
                AVG(pkts), AVG(bytes),
                AVG(network_latency), AVG(retransmissions),
                AVG(handshake_latency), AVG(burstiness)
            FROM flows
            WHERE timestamp BETWEEN 0 and 10
            GROUP BY timestamp, CONCAT(src_address, dst_port)
            ORDER BY timestamp ASC
        """)
        # 2 distinct (ts=0) groups + 1 (ts=1) group
        assert len(result) == 3
        assert len(result.columns) == 8


class TestListing3ProcessFeatures:
    def test_process_feature_query(self, paper_db):
        result = paper_db.sql("""
            SELECT
                timestamp,
                CONCAT(service_name, SPLIT(hostname, '-')[0]),
                AVG(stime + utime) as cpu,
                AVG(statm_resident) as mem,
                AVG(read_b),
                AVG(GREATEST(write_b - cancelled_write_b, 0))
            FROM processes
            WHERE
                SPLIT(hostname, '-')[0] IN
                ('web', 'app', 'db', 'pipeline') AND
                timestamp BETWEEN 0 and 10
            GROUP BY
                timestamp,
                CONCAT(service_name, SPLIT(hostname, '-')[0])
            ORDER BY timestamp ASC
        """)
        # cache-1 host excluded by the IN filter.
        assert len(result) == 4
        groups = result.column(result.columns[1])
        assert "svc1web" in groups
        # GREATEST clamps the negative write delta for svc2 to 0.
        svc2 = [r for r in result.rows if r[1] == "svc2app"][0]
        assert svc2[-1] == 0.0


class TestListing4ConditioningVariables:
    def test_condition_query(self, paper_db):
        result = paper_db.sql("""
            SELECT
                timestamp, tag['pipeline_name'],
                AVG(value) as input_events
            FROM tsdb
            WHERE
                metric_name = 'pipeline_input_rate' AND
                timestamp BETWEEN 0 and 19
            GROUP BY
                timestamp, tag['pipeline_name']
            ORDER BY timestamp ASC
        """)
        assert len(result) == 40
        assert result.columns[-1] == "input_events"


class TestListing5HypothesisJoin:
    def test_union_plus_full_outer_joins(self, paper_db):
        paper_db.create_temp_table("FF_1", """
            SELECT timestamp, 'net' AS name, AVG(retransmissions) AS v
            FROM flows GROUP BY timestamp
        """)
        paper_db.create_temp_table("FF_2", """
            SELECT timestamp, 'proc' AS name, AVG(stime) AS v
            FROM processes GROUP BY timestamp
        """)
        paper_db.create_temp_table("Target", """
            SELECT timestamp, tag['pipeline_name'] AS pipeline_name,
                   AVG(value) AS runtime_sec
            FROM tsdb WHERE metric_name = 'pipeline_runtime'
            GROUP BY timestamp, tag['pipeline_name']
        """)
        paper_db.create_temp_table("Condition", """
            SELECT timestamp, tag['pipeline_name'] AS pipeline_name,
                   AVG(value) AS input_events
            FROM tsdb WHERE metric_name = 'pipeline_input_rate'
            GROUP BY timestamp, tag['pipeline_name']
        """)
        result = paper_db.sql("""
            SELECT
                Target.timestamp, FF.name, FF.v,
                Target.runtime_sec, Condition.input_events
            FROM
                (SELECT * FROM FF_1 UNION ALL SELECT * FROM FF_2) FF
            FULL OUTER JOIN
                Target ON
                (FF.timestamp = Target.timestamp)
            FULL OUTER JOIN
                Condition ON
                Target.timestamp = Condition.timestamp AND
                Target.pipeline_name = Condition.pipeline_name
            ORDER BY Target.timestamp ASC
        """)
        assert len(result) > 0
        # Every fully-joined row must align target and condition pipelines.
        aligned = [r for r in result.rows
                   if r[3] is not None and r[4] is not None]
        assert aligned, "expected aligned target/condition rows"

    def test_windowing_for_lagged_features(self, paper_db):
        """§3.5 footnote: LAG prepares lagged features for the scorer."""
        result = paper_db.sql("""
            SELECT timestamp, tag['pipeline_name'] AS p, value,
                   LAG(value, 1) OVER
                       (PARTITION BY tag['pipeline_name']
                        ORDER BY timestamp) AS value_lag1
            FROM tsdb
            WHERE metric_name = 'pipeline_runtime'
            ORDER BY p, timestamp
            LIMIT 3
        """)
        assert result.column("value_lag1")[0] is None
        assert result.column("value_lag1")[1] == result.column("value")[0]
