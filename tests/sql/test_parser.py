"""Unit tests for the SQL parser's AST construction."""

import pytest

from repro.sql.errors import ParseError
from repro.sql.nodes import (
    Between,
    BinaryOp,
    Case,
    Cast,
    ColumnRef,
    FuncCall,
    InList,
    IsNull,
    Join,
    Like,
    Literal,
    Select,
    Star,
    SubqueryRef,
    Subscript,
    TableRef,
    UnaryOp,
    Union,
)
from repro.sql.parser import parse


class TestBasicSelect:
    def test_select_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt, Select)
        assert isinstance(stmt.items[0].expr, Star)
        assert stmt.source == TableRef(name="t", alias=None)

    def test_column_alias_forms(self):
        stmt = parse("SELECT a AS x, b y, c FROM t")
        assert [i.alias for i in stmt.items] == ["x", "y", None]

    def test_qualified_column(self):
        stmt = parse("SELECT t.a FROM t")
        assert stmt.items[0].expr == ColumnRef(name="a", table="t")

    def test_qualified_star(self):
        stmt = parse("SELECT t.* FROM t")
        assert stmt.items[0].expr == Star(table="t")

    def test_literals(self):
        stmt = parse("SELECT 1, 2.5, 'x', NULL, TRUE, FALSE")
        values = [i.expr.value for i in stmt.items]
        assert values == [1, 2.5, "x", None, True, False]

    def test_select_without_from(self):
        stmt = parse("SELECT 1 + 1")
        assert stmt.source is None

    def test_distinct_flag(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_limit_offset(self):
        stmt = parse("SELECT a FROM t LIMIT 5 OFFSET 2")
        assert stmt.limit == 5
        assert stmt.offset == 2

    def test_order_by_directions(self):
        stmt = parse("SELECT a FROM t ORDER BY a DESC, b ASC, c")
        assert [o.ascending for o in stmt.order_by] == [False, True, True]


class TestExpressions:
    def expr(self, text: str):
        return parse(f"SELECT {text}").items[0].expr

    def test_precedence_arithmetic(self):
        e = self.expr("1 + 2 * 3")
        assert isinstance(e, BinaryOp) and e.op == "+"
        assert isinstance(e.right, BinaryOp) and e.right.op == "*"

    def test_precedence_logic(self):
        e = parse("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3").where
        assert e.op == "OR"
        assert e.right.op == "AND"

    def test_not(self):
        e = parse("SELECT a FROM t WHERE NOT x = 1").where
        assert isinstance(e, UnaryOp) and e.op == "NOT"

    def test_unary_minus(self):
        e = self.expr("-x")
        assert isinstance(e, UnaryOp) and e.op == "-"

    def test_between(self):
        e = parse("SELECT a FROM t WHERE ts BETWEEN 1 AND 5").where
        assert isinstance(e, Between)
        assert not e.negated

    def test_not_between(self):
        e = parse("SELECT a FROM t WHERE ts NOT BETWEEN 1 AND 5").where
        assert e.negated

    def test_in_list(self):
        e = parse("SELECT a FROM t WHERE x IN ('a', 'b')").where
        assert isinstance(e, InList)
        assert len(e.items) == 2

    def test_like(self):
        e = parse("SELECT a FROM t WHERE name LIKE 'dn%'").where
        assert isinstance(e, Like)

    def test_is_null_and_is_not_null(self):
        e1 = parse("SELECT a FROM t WHERE x IS NULL").where
        e2 = parse("SELECT a FROM t WHERE x IS NOT NULL").where
        assert isinstance(e1, IsNull) and not e1.negated
        assert isinstance(e2, IsNull) and e2.negated

    def test_subscript(self):
        e = self.expr("tag['host']")
        assert isinstance(e, Subscript)
        assert e.index == Literal("host")

    def test_chained_subscript(self):
        e = self.expr("SPLIT(h, '-')[0]")
        assert isinstance(e, Subscript)
        assert isinstance(e.base, FuncCall)

    def test_case_expression(self):
        e = self.expr("CASE WHEN x > 1 THEN 'big' ELSE 'small' END")
        assert isinstance(e, Case)
        assert e.default == Literal("small")

    def test_case_requires_when(self):
        with pytest.raises(ParseError):
            parse("SELECT CASE END")

    def test_cast(self):
        e = self.expr("CAST(x AS INT)")
        assert isinstance(e, Cast)
        assert e.type_name == "INT"

    def test_function_call(self):
        e = self.expr("CONCAT(a, '-', b)")
        assert isinstance(e, FuncCall)
        assert e.name == "CONCAT"
        assert len(e.args) == 3

    def test_count_star(self):
        e = self.expr("COUNT(*)")
        assert isinstance(e.args[0], Star)

    def test_count_distinct(self):
        e = self.expr("COUNT(DISTINCT x)")
        assert e.distinct

    def test_window_function(self):
        e = self.expr("LAG(v, 1) OVER (PARTITION BY h ORDER BY ts)")
        assert e.window is not None
        assert len(e.window.partition_by) == 1
        assert len(e.window.order_by) == 1

    def test_concat_operator(self):
        e = self.expr("a || b")
        assert isinstance(e, BinaryOp) and e.op == "||"


class TestFromClause:
    def test_inner_join(self):
        stmt = parse("SELECT * FROM a JOIN b ON a.x = b.x")
        assert isinstance(stmt.source, Join)
        assert stmt.source.kind == "INNER"

    def test_left_join(self):
        stmt = parse("SELECT * FROM a LEFT JOIN b ON a.x = b.x")
        assert stmt.source.kind == "LEFT"

    def test_full_outer_join(self):
        stmt = parse("SELECT * FROM a FULL OUTER JOIN b ON a.x = b.x")
        assert stmt.source.kind == "FULL"

    def test_cross_join_comma(self):
        stmt = parse("SELECT * FROM a, b")
        assert stmt.source.kind == "CROSS"

    def test_chained_joins(self):
        stmt = parse(
            "SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y")
        outer = stmt.source
        assert isinstance(outer.left, Join)

    def test_subquery_in_from(self):
        stmt = parse("SELECT * FROM (SELECT a FROM t) sub")
        assert isinstance(stmt.source, SubqueryRef)
        assert stmt.source.alias == "sub"

    def test_table_alias(self):
        stmt = parse("SELECT * FROM t AS x")
        assert stmt.source.alias == "x"


class TestUnion:
    def test_union_all(self):
        stmt = parse("SELECT a FROM t UNION ALL SELECT a FROM u")
        assert isinstance(stmt, Union)
        assert stmt.all

    def test_union_distinct(self):
        stmt = parse("SELECT a FROM t UNION SELECT a FROM u")
        assert not stmt.all

    def test_union_chain(self):
        stmt = parse("SELECT 1 UNION SELECT 2 UNION SELECT 3")
        assert isinstance(stmt.left, Union)

    def test_parenthesised_union_member(self):
        stmt = parse("(SELECT 1) UNION (SELECT 2)")
        assert isinstance(stmt, Union)


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse("SELECT 1 SELECT 2")

    def test_missing_from_table(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM")

    def test_scalar_subquery_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT (SELECT 1)")

    def test_join_without_on(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM a JOIN b")

    def test_dangling_not(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t WHERE x NOT 5")
