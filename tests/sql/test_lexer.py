"""Unit tests for the SQL tokeniser."""

import pytest

from repro.sql.errors import ParseError
from repro.sql.lexer import Token, tokenize


def kinds(sql: str) -> list[str]:
    return [t.kind for t in tokenize(sql)[:-1]]


def texts(sql: str) -> list[str]:
    return [t.text for t in tokenize(sql)[:-1]]


class TestTokenize:
    def test_keywords_case_insensitive(self):
        assert texts("select FROM Where") == ["SELECT", "FROM", "WHERE"]
        assert kinds("select") == ["KEYWORD"]

    def test_identifiers_keep_case(self):
        assert texts("Target") == ["Target"]
        assert kinds("Target") == ["IDENT"]

    def test_numbers(self):
        assert texts("1 2.5 1e3 1.5E-2") == ["1", "2.5", "1e3", "1.5E-2"]
        assert all(k == "NUMBER" for k in kinds("1 2.5 1e3"))

    def test_string_literal(self):
        tokens = tokenize("'hello world'")
        assert tokens[0].kind == "STRING"
        assert tokens[0].text == "hello world"

    def test_string_escape(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].text == "it's"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_quoted_identifier(self):
        tokens = tokenize('"weird col"')
        assert tokens[0].kind == "IDENT"
        assert tokens[0].text == "weird col"

    def test_operators_greedy(self):
        assert texts("a <= b <> c != d || e") == [
            "a", "<=", "b", "<>", "c", "!=", "d", "||", "e"]

    def test_comments_stripped(self):
        assert texts("SELECT 1 -- comment\n , 2") == ["SELECT", "1", ",", "2"]

    def test_subscript_tokens(self):
        assert texts("tag['host']") == ["tag", "[", "host", "]"]

    def test_unknown_character(self):
        with pytest.raises(ParseError):
            tokenize("SELECT ?")

    def test_eof_token_present(self):
        tokens = tokenize("SELECT 1")
        assert tokens[-1].kind == "EOF"

    def test_helpers(self):
        token = Token("KEYWORD", "SELECT", 0)
        assert token.is_keyword("SELECT", "FROM")
        assert not token.is_op("(")
