"""Executor tests: joins and unions."""

import pytest

from repro.sql import Database, Table


class TestInnerJoin:
    def test_equi_join(self, db):
        result = db.sql(
            "SELECT p.name, o.amount FROM people p JOIN orders o "
            "ON p.name = o.customer ORDER BY o.amount")
        assert result.rows == [("bob", 42.0), ("alice", 80.0),
                               ("alice", 120.0)]

    def test_join_with_residual_predicate(self, db):
        result = db.sql(
            "SELECT p.name, o.amount FROM people p JOIN orders o "
            "ON p.name = o.customer AND o.amount > 50 ORDER BY o.amount")
        assert result.rows == [("alice", 80.0), ("alice", 120.0)]

    def test_non_equi_join_falls_back_to_nested_loop(self, db):
        result = db.sql(
            "SELECT p.name, o.order_id FROM people p JOIN orders o "
            "ON p.age > o.amount ORDER BY p.name, o.order_id")
        # everyone's age (28..41) > amount 10; bob/dave age 28 < 42
        names = result.column("name")
        assert names.count("alice") == 1
        assert names.count("carol") == 1

    def test_self_join_with_aliases(self, db):
        result = db.sql(
            "SELECT a.name, b.name FROM people a JOIN people b "
            "ON a.age = b.age AND a.name <> b.name ORDER BY a.name")
        assert result.rows == [("bob", "dave"), ("dave", "bob")]


class TestOuterJoins:
    def test_left_join_pads_nulls(self, db):
        result = db.sql(
            "SELECT p.name, o.order_id FROM people p LEFT JOIN orders o "
            "ON p.name = o.customer ORDER BY p.name, o.order_id")
        rows = result.rows
        assert ("carol", None) in rows
        assert ("dave", None) in rows
        assert len(rows) == 5

    def test_right_join(self, db):
        result = db.sql(
            "SELECT p.name, o.customer FROM people p RIGHT JOIN orders o "
            "ON p.name = o.customer ORDER BY o.customer")
        assert (None, "erin") in result.rows

    def test_full_outer_join(self, db):
        result = db.sql(
            "SELECT p.name, o.customer FROM people p "
            "FULL OUTER JOIN orders o ON p.name = o.customer")
        rows = set(result.rows)
        assert (None, "erin") in rows          # right-unmatched
        assert ("carol", None) in rows          # left-unmatched
        assert ("alice", "alice") in rows

    def test_full_outer_join_timestamp_alignment(self):
        """The paper's listing-5 pattern: align families on time."""
        db = Database()
        db.register("x", Table(["ts", "v"], [(1, 10.0), (2, 20.0)]))
        db.register("y", Table(["ts", "w"], [(2, 200.0), (3, 300.0)]))
        result = db.sql(
            "SELECT x.ts, x.v, y.w FROM x FULL OUTER JOIN y "
            "ON x.ts = y.ts ORDER BY COALESCE(x.ts, y.ts)")
        assert result.rows == [(1, 10.0, None), (2, 20.0, 200.0),
                               (None, None, 300.0)]


class TestCrossJoin:
    def test_comma_cross_join(self, db):
        result = db.sql("SELECT p.name, o.order_id FROM people p, orders o")
        assert len(result) == 16

    def test_explicit_cross_join(self, db):
        result = db.sql(
            "SELECT p.name FROM people p CROSS JOIN orders o")
        assert len(result) == 16


class TestUnions:
    def test_union_all_keeps_duplicates(self, db):
        result = db.sql("SELECT age FROM people UNION ALL "
                        "SELECT age FROM people")
        assert len(result) == 8

    def test_union_dedupes(self, db):
        result = db.sql("SELECT age FROM people UNION "
                        "SELECT age FROM people ORDER BY age")
        assert result.column("age") == [28, 34, 41]

    def test_union_with_order_limit(self, db):
        result = db.sql(
            "SELECT age FROM people UNION ALL SELECT amount FROM orders "
            "ORDER BY age DESC LIMIT 2")
        assert result.column("age") == [120.0, 80.0]

    def test_union_arity_mismatch(self, db):
        with pytest.raises(Exception):
            db.sql("SELECT age, name FROM people UNION SELECT age "
                   "FROM people")


class TestJoinEdgeCases:
    def test_join_on_null_keys_never_matches(self):
        db = Database()
        db.register("l", Table(["k", "v"], [(None, 1), ("a", 2)]))
        db.register("r", Table(["k", "w"], [(None, 10), ("a", 20)]))
        result = db.sql("SELECT l.v, r.w FROM l JOIN r ON l.k = r.k")
        assert result.rows == [(2, 20)]

    def test_empty_side(self):
        db = Database()
        db.register("l", Table(["k"], [("a",)]))
        db.register("r", Table.empty(["k"]))
        assert len(db.sql("SELECT * FROM l JOIN r ON l.k = r.k")) == 0
        assert len(db.sql(
            "SELECT * FROM l LEFT JOIN r ON l.k = r.k")) == 1
