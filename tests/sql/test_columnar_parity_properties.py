"""Property-based row-vs-columnar executor parity.

Generates random tsdb-shaped column-backed tables and random
SELECT/WHERE/GROUP BY statements drawn from the dialect, then asserts
the columnar executor and the row-at-a-time reference produce identical
tables: same column names, same row order, same cell values (NaN cells
compare equal to NaN — both paths must produce NaN in the same places).

The generator intentionally strays outside the columnar-compilable
subset (HAVING, scalar functions, ORDER BY on plain selects, NaN values
under MIN/MAX); those cases exercise the fallback seam, which must be
invisible in the output.
"""

import math

from hypothesis import given, settings, strategies as st
import numpy as np

from repro.sql.catalog import Database
from repro.sql.table import Table

METRICS = ["cpu", "disk", "net"]
HOSTS = ["h0", "h1", None]
NOTES = [None, "n0", "n1", "long-note"]

NUM_COLS = ["ts", "v"]
STR_COLS = ["metric", "note"]
ALL_COLS = NUM_COLS + STR_COLS


@st.composite
def tsdb_tables(draw):
    n = draw(st.integers(0, 25))
    ts = np.asarray(
        sorted(draw(st.lists(st.integers(0, 40), min_size=n, max_size=n))),
        dtype=np.int64).reshape(n)
    vals = draw(st.lists(
        st.one_of(st.floats(-50, 50), st.just(float("nan"))),
        min_size=n, max_size=n))
    v = np.asarray(vals, dtype=np.float64).reshape(n)
    metric = np.empty(n, dtype=object)
    note = np.empty(n, dtype=object)
    tag = np.empty(n, dtype=object)
    for i in range(n):
        metric[i] = draw(st.sampled_from(METRICS))
        note[i] = draw(st.sampled_from(NOTES))
        host = draw(st.sampled_from(HOSTS))
        tag[i] = {} if host is None else {"host": host}
    return Table.from_columns(["ts", "metric", "tag", "v", "note"],
                              [ts, metric, tag, v, note])


@st.composite
def predicates(draw, depth: int = 2):
    kind = draw(st.sampled_from(
        ["cmp", "between", "in", "null", "like", "sub", "bool"]
        + (["and", "or", "not"] if depth > 0 else [])))
    if kind == "and" or kind == "or":
        left = draw(predicates(depth=depth - 1))
        right = draw(predicates(depth=depth - 1))
        return f"({left} {kind.upper()} {right})"
    if kind == "not":
        return f"(NOT {draw(predicates(depth=depth - 1))})"
    if kind == "cmp":
        op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
        col = draw(st.sampled_from(NUM_COLS))
        use_arith = draw(st.booleans())
        lhs = col if not use_arith else (
            f"({col} {draw(st.sampled_from(['+', '-', '*', '/', '%']))} "
            f"{draw(st.integers(-3, 3))})")
        return f"({lhs} {op} {draw(st.integers(-20, 20))})"
    if kind == "between":
        lo = draw(st.integers(-5, 20))
        neg = draw(st.booleans())
        col = draw(st.sampled_from(NUM_COLS))
        return (f"({col} {'NOT ' if neg else ''}BETWEEN {lo} "
                f"AND {lo + draw(st.integers(0, 15))})")
    if kind == "in":
        col = draw(st.sampled_from(STR_COLS))
        neg = draw(st.booleans())
        items = draw(st.lists(
            st.sampled_from(["'cpu'", "'n0'", "'x'", "NULL"]),
            min_size=1, max_size=3))
        return f"({col} {'NOT ' if neg else ''}IN ({', '.join(items)}))"
    if kind == "null":
        col = draw(st.sampled_from(ALL_COLS))
        neg = draw(st.booleans())
        return f"({col} IS {'NOT ' if neg else ''}NULL)"
    if kind == "like":
        col = draw(st.sampled_from(STR_COLS))
        pattern = draw(st.sampled_from(["c%", "n_", "%o%", ""]))
        neg = draw(st.booleans())
        return f"({col} {'NOT ' if neg else ''}LIKE '{pattern}')"
    if kind == "sub":
        op = draw(st.sampled_from(["= 'h0'", "IS NULL", "<> 'h1'"]))
        return f"(tag['host'] {op})"
    value = draw(st.sampled_from(
        ["TRUE", "FALSE", "NULL", "(metric = 'cpu')"]))
    return f"({value})"


WINDOW_ITEMS = [
    "ROW_NUMBER() OVER (PARTITION BY metric ORDER BY ts) AS rn",
    "RANK(v) OVER (PARTITION BY metric) AS rk",
    "LAG(v) OVER (ORDER BY ts) AS pv",
    "LEAD(v, 2, 0.0) OVER (PARTITION BY metric ORDER BY ts DESC) AS nv",
    "LAG(note, 1, 'none') OVER (PARTITION BY tag ORDER BY ts) AS pn",
    "MOVING_AVG(v, 3) OVER (PARTITION BY metric ORDER BY ts) AS ma",
]


@st.composite
def statements(draw):
    where = f" WHERE {draw(predicates())}" if draw(st.booleans()) else ""
    if draw(st.booleans()):
        # Aggregate query.
        keys = draw(st.lists(st.sampled_from(ALL_COLS + ["tag"]),
                             min_size=1, max_size=2, unique=True))
        aggs = draw(st.lists(st.sampled_from(
            ["COUNT(*) AS n", "SUM(v) AS s", "AVG(v) AS a",
             "MIN(v) AS lo", "MAX(v) AS hi", "MIN(ts) AS t0",
             "COUNT(note) AS cn", "MEDIAN(v) AS md",
             "SUM(v * v) AS sq", "SUM(v) / COUNT(*) AS r",
             "MAX(ts) - MIN(ts) AS span", "COUNT(*) + 1 AS n1"]),
            min_size=1, max_size=3, unique=True))
        items = ", ".join(keys + aggs)
        having = draw(st.sampled_from(
            ["", "", "", " HAVING COUNT(*) > 1", " HAVING SUM(v) > 0",
             " HAVING MIN(ts) >= 2 AND COUNT(*) >= 1"]))
        order = ""
        if draw(st.booleans()):
            pool = keys + [agg.rpartition(" AS ")[2] for agg in aggs]
            order_keys = draw(st.lists(st.sampled_from(pool),
                                       min_size=1, max_size=2, unique=True))
            order = " ORDER BY " + ", ".join(
                key + draw(st.sampled_from(["", " ASC", " DESC"]))
                for key in order_keys)
        return (f"SELECT {items} FROM t{where} "
                f"GROUP BY {', '.join(keys)}{having}{order}")
    # Plain select.
    exprs = draw(st.lists(st.sampled_from(
        ["ts", "v", "metric", "note", "tag", "v * 2 AS dv",
         "ts + v AS tv", "tag['host'] AS host", "UPPER(metric) AS um",
         "CAST(ts AS DOUBLE) AS tsd"] + WINDOW_ITEMS),
        min_size=1, max_size=4, unique=True))
    order = ""
    if draw(st.integers(0, 2)) == 0:
        n_keys = draw(st.integers(1, 2))
        keys = []
        for _ in range(n_keys):
            base = draw(st.one_of(
                st.sampled_from(["ts", "v", "metric", "note"]),
                st.integers(1, len(exprs))))
            keys.append(
                f"{base}{draw(st.sampled_from(['', ' ASC', ' DESC']))}")
        order = " ORDER BY " + ", ".join(keys)
    limit = f" LIMIT {draw(st.integers(0, 10))}" \
        if draw(st.booleans()) else ""
    distinct = "DISTINCT " if draw(st.integers(0, 4)) == 0 else ""
    return f"SELECT {distinct}{', '.join(exprs)} FROM t{where}{order}{limit}"


def _cells_equal(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float) \
            and math.isnan(a) and math.isnan(b):
        return True
    return a == b and type(a) is type(b)


@given(tsdb_tables(), statements())
@settings(max_examples=200, deadline=None)
def test_columnar_matches_row_executor(table, query):
    fast, slow = Database(), Database(columnar=False)
    fast.register("t", table)
    slow.register("t", table)
    result = fast.sql(query)
    reference = slow.sql(query)
    assert result.columns == reference.columns, query
    assert len(result.rows) == len(reference.rows), query
    for got, want in zip(result.rows, reference.rows):
        assert len(got) == len(want), query
        for ca, cb in zip(got, want):
            assert _cells_equal(ca, cb), (
                f"cell mismatch {ca!r} vs {cb!r} for {query!r}")


@st.composite
def dim_tables(draw):
    n = draw(st.integers(0, 8))
    name = np.empty(n, dtype=object)
    owner = np.empty(n, dtype=object)
    for i in range(n):
        name[i] = draw(st.sampled_from(METRICS + ["other", None]))
        owner[i] = draw(st.sampled_from(["alice", "bob", None]))
    w = np.asarray(draw(st.lists(st.integers(0, 5), min_size=n, max_size=n)),
                   dtype=np.int64).reshape(n)
    return Table.from_columns(["name", "owner", "w"], [name, owner, w])


@st.composite
def join_queries(draw):
    kind = draw(st.sampled_from(
        ["JOIN", "INNER JOIN", "LEFT JOIN", "LEFT OUTER JOIN",
         "RIGHT JOIN", "FULL OUTER JOIN"]))
    condition = "t.metric = d.name"
    if draw(st.booleans()):
        condition += " AND t.ts % 3 = d.w % 3"
    condition += draw(st.sampled_from(
        ["", " AND t.v > 0", " AND d.w > 1", " AND t.ts < d.w * 10"]))
    items = draw(st.sampled_from(
        ["t.ts, t.metric, d.owner, d.w", "*", "t.v, d.name, d.w"]))
    where = draw(st.sampled_from(["", " WHERE t.v > 0", " WHERE d.w > 0"]))
    return f"SELECT {items} FROM t {kind} d ON {condition}{where}"


@given(tsdb_tables(), dim_tables(), join_queries())
@settings(max_examples=150, deadline=None)
def test_join_parity(fact, dim, query):
    fast, slow = Database(), Database(columnar=False)
    for db in (fast, slow):
        db.register("t", fact)
        db.register("d", dim)
    result = fast.sql(query)
    reference = slow.sql(query)
    assert result.columns == reference.columns, query
    assert len(result.rows) == len(reference.rows), query
    for got, want in zip(result.rows, reference.rows):
        for ca, cb in zip(got, want):
            assert _cells_equal(ca, cb), (
                f"cell mismatch {ca!r} vs {cb!r} for {query!r}")


@given(tsdb_tables(), predicates())
@settings(max_examples=150, deadline=None)
def test_filter_parity_and_optimizer_interplay(table, predicate):
    """WHERE parity with and without the optimizer's constant folding."""
    query = f"SELECT ts, metric, v FROM t WHERE {predicate}"
    results = []
    for columnar in (True, False):
        for optimize in (True, False):
            db = Database(optimize_queries=optimize, columnar=columnar)
            db.register("t", table)
            results.append(db.sql(query))
    first = results[0]
    for other in results[1:]:
        assert other.columns == first.columns, query
        assert len(other.rows) == len(first.rows), query
        for got, want in zip(other.rows, first.rows):
            for ca, cb in zip(got, want):
                assert _cells_equal(ca, cb), query
