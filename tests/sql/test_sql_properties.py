"""Property-based tests for the SQL engine (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.sql import Database, Table

names = st.text(alphabet="abcdef", min_size=1, max_size=4)
values = st.one_of(st.none(), st.integers(-100, 100),
                   st.floats(-100, 100, allow_nan=False))


@st.composite
def tables(draw):
    n_rows = draw(st.integers(0, 12))
    rows = [(draw(names), draw(values)) for _ in range(n_rows)]
    return Table(["k", "v"], rows)


def _db(table: Table) -> Database:
    db = Database()
    db.register("t", table)
    return db


class TestRelationalInvariants:
    @given(tables())
    @settings(max_examples=40, deadline=None)
    def test_filter_never_grows(self, table):
        db = _db(table)
        out = db.sql("SELECT * FROM t WHERE v > 0")
        assert len(out) <= len(table)

    @given(tables())
    @settings(max_examples=40, deadline=None)
    def test_where_partition(self, table):
        """Rows split exactly into v>0, v<=0 and v IS NULL."""
        db = _db(table)
        pos = len(db.sql("SELECT * FROM t WHERE v > 0"))
        neg = len(db.sql("SELECT * FROM t WHERE v <= 0"))
        nul = len(db.sql("SELECT * FROM t WHERE v IS NULL"))
        assert pos + neg + nul == len(table)

    @given(tables())
    @settings(max_examples=40, deadline=None)
    def test_union_all_length(self, table):
        db = _db(table)
        out = db.sql("SELECT * FROM t UNION ALL SELECT * FROM t")
        assert len(out) == 2 * len(table)

    @given(tables())
    @settings(max_examples=40, deadline=None)
    def test_distinct_idempotent(self, table):
        db = _db(table)
        once = db.sql("SELECT DISTINCT * FROM t")
        db2 = _db(once)
        twice = db2.sql("SELECT DISTINCT * FROM t")
        assert once.rows == twice.rows

    @given(tables())
    @settings(max_examples=40, deadline=None)
    def test_order_by_is_sorted(self, table):
        db = _db(table)
        out = db.sql("SELECT v FROM t WHERE v IS NOT NULL ORDER BY v")
        col = out.column("v")
        assert col == sorted(col)

    @given(tables(), st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_limit_bounds(self, table, k):
        db = _db(table)
        out = db.sql(f"SELECT * FROM t LIMIT {k}")
        assert len(out) == min(k, len(table))

    @given(tables())
    @settings(max_examples=40, deadline=None)
    def test_count_matches_python(self, table):
        db = _db(table)
        out = db.sql("SELECT COUNT(v) FROM t")
        expected = sum(1 for row in table.rows if row[1] is not None)
        assert out.rows == [(expected,)]

    @given(tables())
    @settings(max_examples=40, deadline=None)
    def test_group_by_counts_sum_to_total(self, table):
        db = _db(table)
        out = db.sql("SELECT k, COUNT(*) c FROM t GROUP BY k")
        assert sum(out.column("c")) == len(table)

    @given(tables())
    @settings(max_examples=30, deadline=None)
    def test_self_inner_join_at_least_len_on_key(self, table):
        """Every row matches itself on k, so |join| >= |t| (k is non-null)."""
        db = _db(table)
        out = db.sql("SELECT a.k FROM t a JOIN t b ON a.k = b.k")
        assert len(out) >= len(table)

    @given(tables())
    @settings(max_examples=30, deadline=None)
    def test_left_join_preserves_left_rows(self, table):
        db = _db(table)
        out = db.sql(
            "SELECT a.k FROM t a LEFT JOIN t b "
            "ON a.k = b.k AND b.v > 1000000")
        assert len(out) == len(table)
