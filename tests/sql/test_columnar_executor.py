"""Unit tests for the columnar SQL execution tier.

Every query runs through both ``Database(columnar=True)`` (default) and
``Database(columnar=False)`` (the row-at-a-time reference) over the same
column-backed table; results must be identical in column names, row
order, and cell values.  Where a query is eligible for the fast path we
additionally assert the result came back lazy (column-backed), which
proves the vectorized tier actually ran rather than silently falling
back.
"""

import math

import numpy as np
import pytest

from repro.sql.catalog import Database
from repro.sql.columnar import (
    aggregate_shape_eligible,
    predicate_shape_eligible,
)
from repro.sql.errors import ExecutionError
from repro.sql.parser import parse
from repro.sql.table import Table


def _tsdb_like(n: int = 60) -> Table:
    rng = np.random.default_rng(7)
    ts = np.arange(n, dtype=np.int64)
    metric = np.empty(n, dtype=object)
    metric[:] = [("cpu", "disk", "net")[i % 3] for i in range(n)]
    tag = np.empty(n, dtype=object)
    tag[:] = [{"host": f"h{i % 4}"} for i in range(n)]
    value = rng.standard_normal(n)
    note = np.empty(n, dtype=object)
    note[:] = [None if i % 5 == 0 else f"n{i % 3}" for i in range(n)]
    return Table.from_columns(
        ["timestamp", "metric_name", "tag", "value", "note"],
        [ts, metric, tag, value, note])


def _pair(table: Table) -> tuple[Database, Database]:
    fast, slow = Database(), Database(columnar=False)
    for db in (fast, slow):
        db.register("tsdb", table)
    return fast, slow


def _rows_equal(a: list[tuple], b: list[tuple]) -> bool:
    if len(a) != len(b):
        return False
    for ra, rb in zip(a, b):
        if len(ra) != len(rb):
            return False
        for ca, cb in zip(ra, rb):
            if isinstance(ca, float) and isinstance(cb, float) \
                    and math.isnan(ca) and math.isnan(cb):
                continue
            if ca != cb or type(ca) is not type(cb):
                return False
    return True


def assert_parity(query: str, table: Table | None = None,
                  expect_lazy: bool | None = None) -> Table:
    fast, slow = _pair(table if table is not None else _tsdb_like())
    result = fast.sql(query)
    if expect_lazy is not None:
        assert result.is_materialised() is not expect_lazy, (
            f"expected lazy={expect_lazy} for {query!r}")
    reference = slow.sql(query)
    assert result.columns == reference.columns
    assert _rows_equal(result.rows, reference.rows), (
        f"row mismatch for {query!r}:\n  fast {result.rows[:4]}\n"
        f"  ref  {reference.rows[:4]}")
    return result


class TestColumnarFilter:
    def test_numeric_comparisons(self):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            assert_parity(f"SELECT timestamp, value FROM tsdb "
                          f"WHERE value {op} 0.25", expect_lazy=True)

    def test_and_or_not_three_valued(self):
        assert_parity(
            "SELECT timestamp FROM tsdb WHERE NOT (note = 'n1') "
            "OR (value > 0 AND timestamp < 30)", expect_lazy=True)

    def test_string_equality_on_object_column(self):
        assert_parity("SELECT timestamp FROM tsdb "
                      "WHERE metric_name = 'cpu'", expect_lazy=True)

    def test_null_semantics_under_not(self):
        # note is NULL every 5th row: NOT (NULL = 'n1') must stay NULL
        # (row dropped), not flip to kept.
        result = assert_parity("SELECT note FROM tsdb "
                               "WHERE NOT (note = 'n1')")
        assert None not in [r[0] for r in result.rows]

    def test_between_and_negated_between(self):
        assert_parity("SELECT timestamp FROM tsdb "
                      "WHERE timestamp BETWEEN 10 AND 20", expect_lazy=True)
        assert_parity("SELECT timestamp FROM tsdb "
                      "WHERE timestamp NOT BETWEEN 10 AND 20")

    def test_in_and_not_in(self):
        assert_parity("SELECT timestamp FROM tsdb "
                      "WHERE metric_name IN ('cpu', 'net')", expect_lazy=True)
        assert_parity("SELECT timestamp FROM tsdb "
                      "WHERE metric_name NOT IN ('cpu', 'net')")
        assert_parity("SELECT timestamp FROM tsdb "
                      "WHERE note NOT IN ('n1', NULL)")

    def test_is_null(self):
        assert_parity("SELECT timestamp FROM tsdb WHERE note IS NULL",
                      expect_lazy=True)
        assert_parity("SELECT timestamp FROM tsdb WHERE note IS NOT NULL")

    def test_like(self):
        assert_parity("SELECT timestamp FROM tsdb "
                      "WHERE metric_name LIKE 'c%'", expect_lazy=True)
        assert_parity("SELECT timestamp FROM tsdb "
                      "WHERE note NOT LIKE 'n_'")

    def test_map_subscript(self):
        assert_parity("SELECT timestamp FROM tsdb "
                      "WHERE tag['host'] = 'h2'", expect_lazy=True)
        assert_parity("SELECT timestamp FROM tsdb "
                      "WHERE tag['missing'] IS NULL")

    def test_arithmetic_in_predicate(self):
        assert_parity("SELECT timestamp FROM tsdb "
                      "WHERE value * 2 + 1 > 1.5", expect_lazy=True)
        assert_parity("SELECT timestamp FROM tsdb "
                      "WHERE timestamp % 7 = 3", expect_lazy=True)

    def test_division_by_zero_is_null(self):
        assert_parity("SELECT timestamp FROM tsdb "
                      "WHERE value / 0 > 1")
        assert_parity("SELECT timestamp FROM tsdb "
                      "WHERE value / (timestamp - 10) > 0")

    def test_nan_comparison_is_false_not_null(self):
        n = 6
        value = np.asarray([1.0, float("nan"), -1.0,
                            float("nan"), 0.5, 2.0])
        table = Table.from_columns(
            ["timestamp", "value"],
            [np.arange(n, dtype=np.int64), value])
        assert_parity("SELECT timestamp FROM tsdb WHERE value > 0",
                      table=table)
        assert_parity("SELECT timestamp FROM tsdb WHERE NOT (value > 0)",
                      table=table)

    def test_mixed_type_equality(self):
        assert_parity("SELECT timestamp FROM tsdb WHERE value = 'cpu'")

    def test_int64_overflow_falls_back_to_exact_python_ints(self):
        # Epoch-nanosecond-scale timestamps: ts * 10 wraps in int64 but
        # the row path uses arbitrary-precision ints; the columnar tier
        # must defer.
        table = Table.from_columns(
            ["ts"], [np.asarray([10 ** 18, 5], dtype=np.int64)])
        result = assert_parity("SELECT ts FROM tsdb WHERE ts * 10 > 0",
                               table=table)
        assert result.rows == [(10 ** 18,), (5,)]
        assert_parity("SELECT ts FROM tsdb "
                      "WHERE ts + 20000000000000000000 > 0", table=table)
        assert_parity("SELECT ts, -ts AS neg FROM tsdb WHERE ts > 0",
                      table=table)

    def test_large_int_float_comparison_stays_exact(self):
        # 2**53 + 1 is not float64-representable; numpy would compare
        # it equal to 2.0**53 after promotion, Python compares exactly.
        table = Table.from_columns(
            ["ts"], [np.asarray([2 ** 53 + 1, 7], dtype=np.int64)])
        result = assert_parity(
            f"SELECT ts FROM tsdb WHERE ts = {float(2 ** 53)}",
            table=table)
        assert result.rows == []
        assert_parity(f"SELECT ts FROM tsdb WHERE ts < {float(2 ** 53)}",
                      table=table)

    def test_large_int_division_stays_correctly_rounded(self):
        # Python int/int is correctly rounded; float64-converted
        # operands can be off in the last bit.
        table = Table.from_columns(
            ["a", "b"],
            [np.asarray([3836028225354925625, 10], dtype=np.int64),
             np.asarray([4472196893684131593, 4], dtype=np.int64)])
        fast, slow = _pair(table)
        q = "SELECT a / b AS q FROM tsdb"
        for fa, ro in zip(fast.sql(q).rows, slow.sql(q).rows):
            assert fa[0].hex() == ro[0].hex()

    def test_unsigned_columns_fall_back_to_python_ints(self):
        # numpy wraps uint subtraction/negation; Python goes negative.
        table = Table.from_columns(
            ["u"], [np.asarray([2, 5], dtype=np.uint64)])
        result = assert_parity("SELECT u - 5 AS d, -u AS n FROM tsdb",
                               table=table)
        assert result.rows == [(-3, -2), (0, -5)]
        assert_parity("SELECT u FROM tsdb WHERE u = 2.0", table=table)

    def test_bool_arithmetic_falls_back_to_python_semantics(self):
        # numpy bool arithmetic is logical (True+True is True); Python's
        # is integer (True+True == 2).  Row path must win.
        table = Table.from_columns(
            ["a", "b"], [np.asarray([True, True, False]),
                         np.asarray([True, False, False])])
        result = assert_parity("SELECT a FROM tsdb WHERE a + b = 2",
                               table=table)
        assert result.rows == [(True,)]
        assert_parity("SELECT a FROM tsdb WHERE a - b = 0", table=table)
        assert_parity("SELECT a, -a AS neg FROM tsdb WHERE a = 1",
                      table=table)

    def test_incomparable_ordering_falls_back_to_row_error(self):
        fast, slow = _pair(_tsdb_like())
        with pytest.raises(ExecutionError):
            slow.sql("SELECT timestamp FROM tsdb WHERE metric_name < 5")
        with pytest.raises(ExecutionError):
            fast.sql("SELECT timestamp FROM tsdb WHERE metric_name < 5")


class TestColumnarProject:
    def test_star_is_zero_copy(self):
        result = assert_parity("SELECT * FROM tsdb WHERE value > 0",
                               expect_lazy=True)
        assert result.columns == ["timestamp", "metric_name", "tag",
                                  "value", "note"]

    def test_expressions_and_aliases(self):
        assert_parity("SELECT timestamp, value * 100 AS scaled, "
                      "-value AS neg, CAST(timestamp AS DOUBLE) AS tf "
                      "FROM tsdb WHERE value > 0", expect_lazy=True)

    def test_constant_and_null_columns(self):
        assert_parity("SELECT timestamp, 42 AS k, value / 0 AS z "
                      "FROM tsdb WHERE timestamp < 10")

    def test_limit_offset_distinct(self):
        assert_parity("SELECT metric_name FROM tsdb LIMIT 5")
        assert_parity("SELECT DISTINCT metric_name FROM tsdb")
        assert_parity("SELECT timestamp FROM tsdb "
                      "WHERE value > 0 LIMIT 4 OFFSET 2")

    def test_order_by_runs_columnar(self):
        assert_parity("SELECT timestamp, value FROM tsdb "
                      "WHERE value > 0 ORDER BY value DESC",
                      expect_lazy=True)

    def test_scalar_functions_fall_back_identically(self):
        assert_parity("SELECT UPPER(metric_name) AS u FROM tsdb "
                      "WHERE value > 0", expect_lazy=False)


class TestColumnarAggregate:
    def test_group_by_object_column_all_aggregates(self):
        assert_parity(
            "SELECT metric_name, COUNT(*) AS n, SUM(value) AS s, "
            "AVG(value) AS a, MIN(value) AS lo, MAX(value) AS hi "
            "FROM tsdb GROUP BY metric_name", expect_lazy=True)

    def test_group_by_numeric_column(self):
        assert_parity("SELECT timestamp, COUNT(*) AS n FROM tsdb "
                      "GROUP BY timestamp", expect_lazy=True)

    def test_group_order_is_first_occurrence(self):
        metric = np.empty(6, dtype=object)
        metric[:] = ["z", "a", "z", "m", "a", "z"]
        table = Table.from_columns(
            ["metric_name", "value"],
            [metric, np.asarray([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])])
        result = assert_parity(
            "SELECT metric_name, COUNT(*) AS n FROM tsdb "
            "GROUP BY metric_name", table=table)
        assert [r[0] for r in result.rows] == ["z", "a", "m"]

    def test_multi_key_and_map_key_grouping(self):
        assert_parity("SELECT metric_name, note, COUNT(*) AS n FROM tsdb "
                      "GROUP BY metric_name, note", expect_lazy=True)
        assert_parity("SELECT tag, COUNT(*) AS n FROM tsdb GROUP BY tag",
                      expect_lazy=True)

    def test_count_skips_nulls_in_object_column(self):
        assert_parity("SELECT metric_name, COUNT(note) AS n FROM tsdb "
                      "GROUP BY metric_name", expect_lazy=True)

    def test_filter_then_aggregate(self):
        assert_parity(
            "SELECT metric_name, AVG(value) AS a FROM tsdb "
            "WHERE value > 0 AND timestamp BETWEEN 5 AND 50 "
            "GROUP BY metric_name", expect_lazy=True)

    def test_global_aggregates(self):
        assert_parity("SELECT COUNT(*) AS n, SUM(value) AS s, "
                      "MIN(timestamp) AS lo FROM tsdb", expect_lazy=True)

    def test_global_aggregate_over_empty_relation(self):
        assert_parity("SELECT COUNT(*) AS n, AVG(value) AS a, "
                      "MAX(value) AS hi FROM tsdb WHERE value > 1e12")

    def test_group_by_over_empty_relation(self):
        assert_parity("SELECT metric_name, COUNT(*) AS n FROM tsdb "
                      "WHERE value > 1e12 GROUP BY metric_name")

    def test_order_by_aggregate_output(self):
        assert_parity("SELECT metric_name, AVG(value) AS a FROM tsdb "
                      "GROUP BY metric_name ORDER BY a DESC")
        assert_parity("SELECT metric_name, COUNT(*) AS n FROM tsdb "
                      "GROUP BY metric_name ORDER BY n, metric_name DESC")

    def test_min_max_with_negative_zero_is_bitwise_identical(self):
        # builtin min keeps the first of equal values (0.0), reduceat
        # may pick -0.0; the columnar tier must defer to stay bitwise.
        value = np.asarray([0.0, -0.0, 1.0, -0.0, 0.0, 2.0])
        metric = np.empty(6, dtype=object)
        metric[:] = ["a", "a", "a", "b", "b", "b"]
        table = Table.from_columns(["metric_name", "value"],
                                   [metric, value])
        fast, slow = _pair(table)
        q = ("SELECT metric_name, MIN(value) AS lo FROM tsdb "
             "GROUP BY metric_name")
        for fa, ro in zip(fast.sql(q).rows, slow.sql(q).rows):
            assert fa[1].hex() == ro[1].hex()

    def test_min_max_with_nan_falls_back_identically(self):
        value = np.asarray([1.0, float("nan"), -1.0, 3.0])
        metric = np.empty(4, dtype=object)
        metric[:] = ["a", "a", "b", "b"]
        table = Table.from_columns(["metric_name", "value"],
                                   [metric, value])
        assert_parity("SELECT metric_name, MAX(value) AS hi FROM tsdb "
                      "GROUP BY metric_name", table=table)

    def test_having_runs_columnar(self):
        assert_parity("SELECT metric_name, COUNT(*) AS n FROM tsdb "
                      "GROUP BY metric_name HAVING COUNT(*) > 5",
                      expect_lazy=True)

    def test_having_on_output_alias(self):
        assert_parity("SELECT metric_name, COUNT(*) AS n FROM tsdb "
                      "GROUP BY metric_name HAVING n > 5",
                      expect_lazy=True)

    def test_having_filters_everything(self):
        result = assert_parity(
            "SELECT metric_name, COUNT(*) AS n FROM tsdb "
            "GROUP BY metric_name HAVING COUNT(*) > 1000",
            expect_lazy=True)
        assert len(result.rows) == 0

    def test_distinct_agg_falls_back_identically(self):
        assert_parity("SELECT COUNT(DISTINCT metric_name) AS n FROM tsdb")

    def test_aggregate_expression_arguments(self):
        assert_parity("SELECT metric_name, SUM(value * value) AS sq, "
                      "MIN(value + 1) AS lo FROM tsdb GROUP BY metric_name",
                      expect_lazy=True)

    def test_group_level_item_expressions(self):
        assert_parity("SELECT metric_name, SUM(value) / COUNT(*) AS r, "
                      "MAX(timestamp) - MIN(timestamp) AS span "
                      "FROM tsdb GROUP BY metric_name", expect_lazy=True)

    def test_order_by_aggregate_expression_desc(self):
        assert_parity("SELECT metric_name, SUM(value) AS s FROM tsdb "
                      "GROUP BY metric_name ORDER BY s DESC, metric_name",
                      expect_lazy=True)

    def test_avg_sum_bitwise_vs_row_path(self):
        """SUM/AVG must match the row path bit for bit, not just approx."""
        fast, slow = _pair(_tsdb_like(200))
        q = ("SELECT metric_name, SUM(value) AS s, AVG(value) AS a "
             "FROM tsdb GROUP BY metric_name")
        for fa, ro in zip(fast.sql(q).rows, slow.sql(q).rows):
            assert fa[1].hex() == ro[1].hex()
            assert fa[2].hex() == ro[2].hex()


class TestShapeEligibility:
    def test_predicate_shapes(self):
        eligible = parse("SELECT a FROM t WHERE a > 1 AND b IN (1, 2)")
        assert predicate_shape_eligible(eligible.where)
        udf = parse("SELECT a FROM t WHERE myudf(a) > 1")
        assert not predicate_shape_eligible(udf.where)

    def test_aggregate_shapes(self):
        good = parse("SELECT k, COUNT(*) FROM t GROUP BY k")
        assert aggregate_shape_eligible(good)
        having = parse("SELECT k, SUM(v * v) / COUNT(*) AS r FROM t "
                       "GROUP BY k HAVING COUNT(*) > 1 ORDER BY r DESC")
        assert aggregate_shape_eligible(having)
        bad = parse("SELECT k, COUNT(DISTINCT v) FROM t GROUP BY k")
        assert not aggregate_shape_eligible(bad)
        bad_pct = parse("SELECT k, PERCENTILE(v, 50) FROM t GROUP BY k")
        assert not aggregate_shape_eligible(bad_pct)

    def test_explain_tags_columnar_stages(self):
        fast, _ = _pair(_tsdb_like())
        plan = fast.explain("SELECT metric_name, COUNT(*) AS n FROM tsdb "
                            "WHERE value > 0 GROUP BY metric_name")
        assert plan.count("[columnar-eligible]") == 2


class TestTableColumnarHelpers:
    def test_column_vectors_normalise_and_cache(self):
        table = Table.from_columns(["a", "b"],
                                   [np.arange(3, dtype=np.int64),
                                    ["x", None, "y"]])
        vectors = table.column_vectors()
        assert vectors[0].dtype == np.int64
        assert vectors[1].dtype == object
        assert vectors[1] is table.column_vectors()[1]   # cached wrap
        assert Table(["a"], [(1,)]).column_vectors() is None

    def test_gather_mask_and_indices(self):
        table = Table.from_columns(["a", "v"],
                                   [np.arange(4, dtype=np.int64),
                                    np.asarray([1.0, 2.0, 3.0, 4.0])])
        masked = table.gather(np.asarray(table.column("v")) > 2.0)
        assert not masked.is_materialised()
        assert masked.rows == [(2, 3.0), (3, 4.0)]
        picked = table.gather(np.asarray([3, 0]))
        assert picked.rows == [(3, 4.0), (0, 1.0)]
        row_built = Table(["a"], [(0,), (1,), (2,)])
        assert row_built.gather(np.asarray([True, False, True])).rows \
            == [(0,), (2,)]
        assert row_built.gather(np.asarray([2, 0])).rows == [(2,), (0,)]

    def test_slice_rows_and_limit_stay_lazy(self):
        table = Table.from_columns(["a"], [np.arange(10, dtype=np.int64)])
        sliced = table.slice_rows(2, 5)
        assert not sliced.is_materialised()
        assert sliced.rows == [(2,), (3,), (4,)]
        limited = table.limit(3)
        assert not limited.is_materialised()
        assert limited.rows == [(0,), (1,), (2,)]


def _dim_table() -> Table:
    return Table.from_columns(
        ["name", "owner", "weight"],
        [np.array(["cpu", "net", "x", None], dtype=object),
         np.array(["alice", None, "bob", "eve"], dtype=object),
         np.array([3, 1, 2, 9], dtype=np.int64)])


def _join_pair() -> tuple[Database, Database]:
    fast, slow = _pair(_tsdb_like(40))
    for db in (fast, slow):
        db.register("dim", _dim_table())
    return fast, slow


def assert_join_parity(query: str, expect_lazy: bool | None = None) -> None:
    fast, slow = _join_pair()
    result = fast.sql(query)
    if expect_lazy is not None:
        assert result.is_materialised() is not expect_lazy, (
            f"expected lazy={expect_lazy} for {query!r}")
    reference = slow.sql(query)
    assert result.columns == reference.columns
    assert _rows_equal(result.rows, reference.rows), (
        f"row mismatch for {query!r}:\n  fast {result.rows[:4]}\n"
        f"  ref  {reference.rows[:4]}")


class TestColumnarJoin:
    def test_inner_equi_join(self):
        assert_join_parity(
            "SELECT tsdb.timestamp, tsdb.metric_name, dim.owner "
            "FROM tsdb JOIN dim ON tsdb.metric_name = dim.name",
            expect_lazy=True)

    def test_left_join_interleaves_null_rows(self):
        assert_join_parity(
            "SELECT tsdb.metric_name, dim.owner, dim.weight FROM tsdb "
            "LEFT JOIN dim ON tsdb.metric_name = dim.name",
            expect_lazy=True)

    def test_right_and_full_join_append_unmatched(self):
        assert_join_parity(
            "SELECT tsdb.metric_name, dim.name FROM tsdb "
            "RIGHT JOIN dim ON tsdb.metric_name = dim.name",
            expect_lazy=True)
        assert_join_parity(
            "SELECT tsdb.metric_name, dim.name FROM tsdb "
            "FULL OUTER JOIN dim ON tsdb.metric_name = dim.name",
            expect_lazy=True)

    def test_residual_predicate_applies_per_candidate(self):
        assert_join_parity(
            "SELECT tsdb.timestamp, dim.weight FROM tsdb JOIN dim "
            "ON tsdb.metric_name = dim.name AND tsdb.value > 0",
            expect_lazy=True)

    def test_multi_key_with_expression_sides(self):
        assert_join_parity(
            "SELECT tsdb.timestamp, dim.weight FROM tsdb JOIN dim "
            "ON tsdb.metric_name = dim.name "
            "AND tsdb.timestamp % 2 = dim.weight % 2",
            expect_lazy=True)

    def test_join_then_filter_aggregate_stays_columnar(self):
        assert_join_parity(
            "SELECT dim.owner, COUNT(*) AS n, SUM(tsdb.value) AS s "
            "FROM tsdb JOIN dim ON tsdb.metric_name = dim.name "
            "WHERE tsdb.timestamp > 3 GROUP BY dim.owner",
            expect_lazy=True)

    def test_non_equi_join_falls_back_identically(self):
        assert_join_parity(
            "SELECT tsdb.timestamp, dim.weight FROM tsdb JOIN dim "
            "ON tsdb.timestamp < dim.weight")

    def test_null_keys_never_match(self):
        # dim.name has a NULL and tsdb.note has NULLs: NULL = NULL must
        # not join.
        assert_join_parity(
            "SELECT tsdb.note, dim.owner FROM tsdb "
            "LEFT JOIN dim ON tsdb.note = dim.name", expect_lazy=True)


class TestColumnarWindows:
    def test_row_number_and_rank(self):
        assert_parity(
            "SELECT timestamp, ROW_NUMBER() OVER "
            "(PARTITION BY metric_name ORDER BY timestamp DESC) AS rn, "
            "RANK(value) OVER (PARTITION BY metric_name) AS rk FROM tsdb",
            expect_lazy=True)

    def test_lag_lead_defaults(self):
        assert_parity(
            "SELECT timestamp, LAG(value) OVER (ORDER BY timestamp) AS pv, "
            "LEAD(value, 2, 0.0) OVER (PARTITION BY metric_name "
            "ORDER BY timestamp) AS nv FROM tsdb", expect_lazy=True)

    def test_lag_over_object_column_with_nulls(self):
        assert_parity(
            "SELECT note, LAG(note, 1, 'start') OVER "
            "(PARTITION BY metric_name ORDER BY timestamp) AS pn FROM tsdb",
            expect_lazy=True)

    def test_moving_avg_partitioned(self):
        assert_parity(
            "SELECT timestamp, MOVING_AVG(value, 4) OVER "
            "(PARTITION BY metric_name ORDER BY timestamp) AS ma FROM tsdb",
            expect_lazy=True)

    def test_window_partition_by_map_column(self):
        assert_parity(
            "SELECT timestamp, ROW_NUMBER() OVER "
            "(PARTITION BY tag ORDER BY timestamp) AS rn FROM tsdb",
            expect_lazy=True)

    def test_window_in_expression(self):
        assert_parity(
            "SELECT value - LAG(value) OVER (ORDER BY timestamp) AS delta "
            "FROM tsdb", expect_lazy=True)


class TestColumnarOrderBy:
    def test_mixed_directions_and_positional(self):
        assert_parity(
            "SELECT metric_name, value, timestamp FROM tsdb "
            "ORDER BY metric_name ASC, 2 DESC", expect_lazy=True)

    def test_order_by_nan_groups_last(self):
        n = 8
        values = np.array([5.0, float("nan"), 1.0, 3.0,
                           float("nan"), -2.0, 0.0, 9.0])
        table = Table.from_columns(
            ["ts", "v"], [np.arange(n, dtype=np.int64), values])
        result = assert_parity("SELECT ts, v FROM tsdb ORDER BY v",
                               table=table, expect_lazy=True)
        got = [v for _, v in result.rows]
        assert got[:6] == [-2.0, 0.0, 1.0, 3.0, 5.0, 9.0]
        assert all(v != v for v in got[6:])

    def test_order_by_output_alias_and_input_column(self):
        assert_parity(
            "SELECT timestamp, value * 2 AS dv FROM tsdb "
            "ORDER BY dv DESC, timestamp", expect_lazy=True)

    def test_order_by_null_first(self):
        assert_parity("SELECT note, timestamp FROM tsdb ORDER BY note",
                      expect_lazy=True)

    def test_order_by_window_alias(self):
        assert_parity(
            "SELECT timestamp, LAG(value) OVER (ORDER BY timestamp) AS pv "
            "FROM tsdb ORDER BY pv DESC", expect_lazy=True)


class TestRowBackedTablesUnaffected:
    def test_row_built_table_takes_row_path(self):
        table = Table(["k", "v"], [("a", 1), ("b", 2), ("a", 3)])
        fast, slow = _pair(table)
        q = "SELECT k, SUM(v) AS s FROM tsdb WHERE v > 1 GROUP BY k"
        assert fast.sql(q).rows == slow.sql(q).rows == [("b", 2.0),
                                                        ("a", 3.0)]
