"""Per-tag-key statistics and the selectivity they unlock.

PR 6 priced predicates on plain columns only; ``tag['host'] = 'h1'``
fell back to the default guess.  The stats tier now summarises each tag
key as a *virtual column* — min/max/distinct over its values, and a
null count equal to the rows where the map lacks the key — both from
the tsdb inverted index (:func:`store_stats`) and from a one-pass walk
of materialised dict columns (:func:`table_stats`).
"""

import numpy as np
import pytest

from repro.sql import Database, Table
from repro.sql.parser import parse
from repro.sql.stats import (
    TableStats,
    ColumnSummary,
    estimate_selectivity,
    table_stats,
)
from repro.tsdb.adapter import register_store, store_stats
from repro.tsdb.model import SeriesId
from repro.tsdb.storage import TimeSeriesStore


def _store() -> TimeSeriesStore:
    """4 series, 10 points each; 'dc' present on 3 of 4 series,
    'rack' on 1."""
    store = TimeSeriesStore()
    specs = [
        {"host": "h1", "dc": "east"},
        {"host": "h2", "dc": "west"},
        {"host": "h3", "dc": "east", "rack": "r9"},
        {"host": "h4"},
    ]
    for i, tags in enumerate(specs):
        store.insert_array(SeriesId.make("cpu.util", tags),
                           np.arange(10, dtype=np.int64),
                           np.full(10, float(i)))
    return store


def _where(sql_predicate: str):
    return parse(f"SELECT * FROM t WHERE {sql_predicate}").where


class TestStoreStats:
    def test_tag_key_summaries_from_inverted_index(self):
        stats = store_stats(_store())
        assert stats.rows == 40
        host = stats.map_column("tag", "host")
        assert host == ColumnSummary(min="h1", max="h4",
                                     null_count=0, distinct=4)
        dc = stats.map_column("tag", "dc")
        assert dc == ColumnSummary(min="east", max="west",
                                   null_count=10, distinct=2)
        rack = stats.map_column("tag", "rack")
        assert rack.null_count == 30 and rack.distinct == 1

    def test_unknown_key_and_column_return_none(self):
        stats = store_stats(_store())
        assert stats.map_column("tag", "missing") is None
        assert stats.map_column("nottag", "host") is None

    def test_column_name_lowered_key_case_sensitive(self):
        stats = store_stats(_store())
        assert stats.map_column("TAG", "dc") is not None
        assert stats.map_column("tag", "DC") is None


class TestTableStatsMapColumns:
    def test_materialised_dict_column_summarised(self):
        # Shared dicts per group, like tsdb_table emits per series.
        # (Map summaries come from the columnar path: row-built tables
        # have no vectors to walk.)
        east = {"dc": "east"}
        west = {"dc": "west", "rack": "r1"}
        table = Table.from_columns(
            ["n", "tag"], [np.asarray([1, 2, 3, 4]),
                           [east, east, west, None]])
        stats = table_stats(table)
        dc = stats.map_column("tag", "dc")
        assert dc == ColumnSummary(min="east", max="west",
                                   null_count=1, distinct=2)
        rack = stats.map_column("tag", "rack")
        assert rack.null_count == 3 and rack.distinct == 1

    def test_non_map_columns_get_no_map_summaries(self):
        table = Table.from_columns(
            ["n", "s"], [np.asarray([1, 2]), ["a", "b"]])
        assert table_stats(table).map_columns == ()


class TestTagSelectivity:
    def test_equality_uses_distinct_and_present_fraction(self):
        stats = store_stats(_store())
        # 1/distinct(dc)=1/2, scaled by present fraction 30/40.
        frac = estimate_selectivity(_where("tag['dc'] = 'east'"), stats)
        assert frac == pytest.approx(0.5 * 0.75)
        # host is on every row: no discount.
        frac = estimate_selectivity(_where("tag['host'] = 'h1'"), stats)
        assert frac == pytest.approx(0.25)

    def test_flipped_orientation_matches(self):
        stats = store_stats(_store())
        assert (estimate_selectivity(_where("'east' = tag['dc']"), stats)
                == estimate_selectivity(_where("tag['dc'] = 'east'"),
                                        stats))

    def test_is_null_prices_key_absence(self):
        stats = store_stats(_store())
        frac = estimate_selectivity(_where("tag['rack'] IS NULL"), stats)
        assert frac == pytest.approx(30 / 40)
        frac = estimate_selectivity(
            _where("tag['rack'] IS NOT NULL"), stats)
        assert frac == pytest.approx(10 / 40)

    def test_in_list_uses_distinct(self):
        stats = store_stats(_store())
        frac = estimate_selectivity(
            _where("tag['host'] IN ('h1', 'h2')"), stats)
        assert frac == pytest.approx(2 / 4)

    def test_unknown_key_falls_back_to_default(self):
        stats = store_stats(_store())
        frac = estimate_selectivity(_where("tag['ghost'] = 'x'"), stats)
        assert frac == pytest.approx(0.1)   # no summary: classic guess

    def test_conjunction_multiplies(self):
        stats = store_stats(_store())
        both = estimate_selectivity(
            _where("tag['dc'] = 'east' AND tag['host'] = 'h1'"), stats)
        assert both == pytest.approx((0.5 * 0.75) * 0.25)


class TestPlannerIntegration:
    def test_filter_estimate_reflects_tag_stats(self):
        db = Database()
        register_store(db, _store())
        plan = db.explain(
            "SELECT value FROM tsdb WHERE tag['dc'] = 'east'")
        # 40 rows * 0.5 * 0.75 = 15.
        assert "est=15 rows" in plan

    def test_group_by_tag_estimate_uses_distinct(self):
        db = Database()
        register_store(db, _store())
        plan = db.explain(
            "SELECT tag['host'], COUNT(*) FROM tsdb "
            "GROUP BY tag['host']")
        # Grouping on tag['host'] is bounded by its 4 distinct values.
        assert "est=4 rows" in plan

    def test_group_by_unknown_tag_still_plans(self):
        db = Database()
        register_store(db, _store())
        plan = db.explain(
            "SELECT tag['ghost'], COUNT(*) FROM tsdb "
            "GROUP BY tag['ghost']")
        assert "Aggregate" in plan
