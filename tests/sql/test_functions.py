"""Unit tests for scalar SQL functions and UDF registration."""

import pytest

from repro.sql import Database, ExecutionError, Table


@pytest.fixture
def db1() -> Database:
    db = Database()
    db.register("t", Table(["s", "x"], [("web-1", 2.0)]))
    return db


def scalar(db1: Database, expr: str):
    return db1.sql(f"SELECT {expr} AS out FROM t").rows[0][0]


class TestStringFunctions:
    def test_concat(self, db1):
        assert scalar(db1, "CONCAT('a', 'b', 1)") == "ab1"

    def test_concat_null_propagates(self, db1):
        assert scalar(db1, "CONCAT('a', NULL)") is None

    def test_split_and_index(self, db1):
        assert scalar(db1, "SPLIT(s, '-')[0]") == "web"
        assert scalar(db1, "SPLIT(s, '-')[1]") == "1"

    def test_split_negative_index(self, db1):
        assert scalar(db1, "SPLIT(s, '-')[-1]") == "1"

    def test_split_out_of_range_is_null(self, db1):
        assert scalar(db1, "SPLIT(s, '-')[9]") is None

    def test_upper_lower_trim(self, db1):
        assert scalar(db1, "UPPER('ab')") == "AB"
        assert scalar(db1, "LOWER('AB')") == "ab"
        assert scalar(db1, "TRIM('  x ')") == "x"

    def test_substr_one_based(self, db1):
        assert scalar(db1, "SUBSTR('hello', 2, 3)") == "ell"
        assert scalar(db1, "SUBSTR('hello', 2)") == "ello"

    def test_replace(self, db1):
        assert scalar(db1, "REPLACE('a-b-c', '-', '.')") == "a.b.c"

    def test_length(self, db1):
        assert scalar(db1, "LENGTH('abc')") == 3


class TestNumericFunctions:
    def test_abs(self, db1):
        assert scalar(db1, "ABS(-3)") == 3.0

    def test_log_exp_sqrt(self, db1):
        assert scalar(db1, "LOG(EXP(1))") == pytest.approx(1.0)
        assert scalar(db1, "SQRT(16)") == 4.0

    def test_log_of_negative_raises(self, db1):
        with pytest.raises(ExecutionError):
            scalar(db1, "LOG(-1)")

    def test_round(self, db1):
        assert scalar(db1, "ROUND(2.567, 1)") == 2.6
        assert scalar(db1, "ROUND(2.5)") == 2.0

    def test_floor_ceil(self, db1):
        assert scalar(db1, "FLOOR(2.7)") == 2.0
        assert scalar(db1, "CEIL(2.1)") == 3.0

    def test_power(self, db1):
        assert scalar(db1, "POWER(2, 10)") == 1024.0

    def test_greatest_least_skip_nulls(self, db1):
        assert scalar(db1, "GREATEST(1, NULL, 3)") == 3
        assert scalar(db1, "LEAST(1, NULL, 3)") == 1
        assert scalar(db1, "GREATEST(NULL, NULL)") is None


class TestConditionalFunctions:
    def test_coalesce(self, db1):
        assert scalar(db1, "COALESCE(NULL, NULL, 5)") == 5
        assert scalar(db1, "COALESCE(NULL, NULL)") is None

    def test_if(self, db1):
        assert scalar(db1, "IF(x > 1, 'big', 'small')") == "big"

    def test_nullif(self, db1):
        assert scalar(db1, "NULLIF(2, 2)") is None
        assert scalar(db1, "NULLIF(2, 3)") == 2


class TestMapFunctions:
    def test_map_construction_and_access(self, db1):
        assert scalar(db1, "MAP('a', 1, 'b', 2)['b']") == 2

    def test_map_keys_values(self, db1):
        assert scalar(db1, "MAP_KEYS(MAP('a', 1))") == ["a"]
        assert scalar(db1, "MAP_VALUES(MAP('a', 1))") == [1]

    def test_map_odd_args_rejected(self, db1):
        with pytest.raises(ExecutionError):
            scalar(db1, "MAP('a')")

    def test_missing_map_key_is_null(self, db1):
        assert scalar(db1, "MAP('a', 1)['z']") is None


class TestUdfs:
    def test_hostgroup_udf(self, db1):
        """The paper's UDF example: hostgroup instead of SPLIT[0]."""
        db1.register_udf("hostgroup", lambda h: h.split("-")[0])
        assert scalar(db1, "hostgroup(s)") == "web"

    def test_udf_case_insensitive(self, db1):
        db1.register_udf("MyFn", lambda v: v * 10)
        assert scalar(db1, "myfn(x)") == 20.0

    def test_udf_error_wrapped(self, db1):
        db1.register_udf("boom", lambda v: 1 / 0)
        with pytest.raises(ExecutionError, match="BOOM"):
            scalar(db1, "boom(x)")

    def test_udf_in_group_by(self, db1):
        db = Database()
        db.register("hosts", Table(
            ["host"], [("web-1",), ("web-2",), ("db-1",)]))
        db.register_udf("hostgroup", lambda h: h.split("-")[0])
        result = db.sql(
            "SELECT hostgroup(host) g, COUNT(*) c FROM hosts "
            "GROUP BY hostgroup(host) ORDER BY g")
        assert result.rows == [("db", 1), ("web", 2)]
