"""Unit and property tests for the predicate-pushdown optimizer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sql import Database, Table
from repro.sql.optimizer import count_pushed_filters, optimize
from repro.sql.parser import parse


@pytest.fixture
def join_db() -> Database:
    db = Database()
    db.register("l", Table(["k", "v"], [
        ("a", 1), ("b", 2), ("c", 3), ("a", 4), (None, 5)]))
    db.register("r", Table(["k", "w"], [
        ("a", 10), ("b", 20), ("d", 40), (None, 50)]))
    return db


def _both_ways(query: str, db: Database) -> tuple[Table, Table]:
    raw_db = Database(optimize_queries=False)
    for name in db.table_names():
        raw_db.register(name, db.table(name))
    return db.sql(query), raw_db.sql(query)


class TestRewriteStructure:
    def test_single_side_predicate_pushed(self):
        stmt = optimize(parse(
            "SELECT l.v FROM l JOIN r ON l.k = r.k WHERE l.v > 1"))
        assert count_pushed_filters(stmt) == 1
        assert stmt.where is None

    def test_both_sides_pushed(self):
        stmt = optimize(parse(
            "SELECT l.v FROM l JOIN r ON l.k = r.k "
            "WHERE l.v > 1 AND r.w < 30"))
        assert count_pushed_filters(stmt) == 2

    def test_cross_side_predicate_stays(self):
        stmt = optimize(parse(
            "SELECT l.v FROM l JOIN r ON l.k = r.k WHERE l.v < r.w"))
        assert count_pushed_filters(stmt) == 0
        assert stmt.where is not None

    def test_unqualified_ref_not_pushed(self):
        stmt = optimize(parse(
            "SELECT l.v FROM l JOIN r ON l.k = r.k WHERE v > 1"))
        assert count_pushed_filters(stmt) == 0

    def test_right_side_of_left_join_not_pushed(self):
        stmt = optimize(parse(
            "SELECT l.v FROM l LEFT JOIN r ON l.k = r.k WHERE r.w > 5"))
        assert count_pushed_filters(stmt) == 0

    def test_left_side_of_left_join_pushed(self):
        stmt = optimize(parse(
            "SELECT l.v FROM l LEFT JOIN r ON l.k = r.k WHERE l.v > 1"))
        assert count_pushed_filters(stmt) == 1

    def test_no_join_untouched(self):
        stmt = optimize(parse("SELECT v FROM l WHERE v > 1"))
        assert count_pushed_filters(stmt) == 0

    def test_union_members_optimised(self):
        stmt = optimize(parse(
            "SELECT l.v FROM l JOIN r ON l.k = r.k WHERE l.v > 1 "
            "UNION ALL "
            "SELECT l.v FROM l JOIN r ON l.k = r.k WHERE r.w > 1"))
        assert count_pushed_filters(stmt) == 2


class TestSemanticEquivalence:
    QUERIES = [
        "SELECT l.v FROM l JOIN r ON l.k = r.k WHERE l.v > 1 ORDER BY l.v",
        "SELECT l.v, r.w FROM l JOIN r ON l.k = r.k "
        "WHERE l.v > 1 AND r.w < 30 ORDER BY l.v, r.w",
        "SELECT l.v FROM l LEFT JOIN r ON l.k = r.k "
        "WHERE l.v >= 2 ORDER BY l.v",
        "SELECT l.k, COUNT(*) c FROM l JOIN r ON l.k = r.k "
        "WHERE l.v > 0 AND r.w >= 10 GROUP BY l.k ORDER BY l.k",
        "SELECT a.v FROM l a JOIN l b ON a.k = b.k "
        "WHERE a.v > 1 AND b.v < 4 ORDER BY a.v",
        "SELECT l.v FROM l CROSS JOIN r WHERE l.v > 2 AND r.w > 15 "
        "ORDER BY l.v, r.w",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_optimised_equals_raw(self, query, join_db):
        optimised, raw = _both_ways(query, join_db)
        assert optimised.rows == raw.rows
        assert optimised.columns == raw.columns


class TestEquivalenceProperty:
    @given(st.integers(-2, 4), st.integers(5, 45))
    @settings(max_examples=30, deadline=None)
    def test_threshold_sweep(self, v_threshold, w_threshold):
        db = Database()
        db.register("l", Table(["k", "v"], [
            ("a", 1), ("b", 2), ("c", 3), ("a", 4)]))
        db.register("r", Table(["k", "w"], [
            ("a", 10), ("b", 20), ("d", 40)]))
        query = (f"SELECT l.k, l.v, r.w FROM l JOIN r ON l.k = r.k "
                 f"WHERE l.v > {v_threshold} AND r.w < {w_threshold} "
                 f"ORDER BY l.k, l.v, r.w")
        optimised, raw = _both_ways(query, db)
        assert optimised.rows == raw.rows
