"""Property-based tests on the workload generators (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.causal import partial_correlation
from repro.workloads.datacenter import ClusterConfig, DataCenterModel
from repro.workloads.incidents import CAUSE_KINDS, IncidentSpec, make_incident
from repro.workloads.signals import periodic_windows, window


class TestSignalProperties:
    @given(st.integers(1, 50), st.integers(1, 50), st.integers(0, 100),
           st.integers(20, 120))
    @settings(max_examples=40, deadline=None)
    def test_periodic_window_duty_cycle(self, period, duration, offset, n):
        sig = periodic_windows(n, period, duration, offset=offset)
        expected = min(duration / period, 1.0)
        assert abs(sig.mean() - expected) <= max(period / n, 0.5)

    @given(st.integers(0, 50), st.integers(0, 50), st.integers(10, 80))
    @settings(max_examples=40, deadline=None)
    def test_window_bounds(self, start, end, n):
        sig = window(n, start, end)
        assert sig.sum() == max(0, min(end, n) - max(0, start))


class TestIncidentProperties:
    @given(st.sampled_from(CAUSE_KINDS), st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_incident_invariants(self, kind, seed):
        incident = make_incident(IncidentSpec(
            0, kind, n_background=8, n_large_families=1,
            large_family_features=30, n_samples=120, seed=seed))
        # The target is never in its own search space labels.
        assert incident.target not in incident.causes | incident.effects
        # Causes and effects are disjoint.
        assert not incident.causes & incident.effects
        # Every labelled family exists.
        for name in incident.causes | incident.effects:
            assert name in incident.families
        # All families share one sample count.
        lengths = {f.n_samples for f in incident.families}
        assert len(lengths) == 1

    @given(st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_effects_correlate_with_target(self, seed):
        incident = make_incident(IncidentSpec(
            0, "univariate", n_background=5, n_large_families=0,
            n_samples=150, seed=seed))
        target = incident.families[incident.target].matrix[:, 0]
        for name in incident.effects:
            effect = incident.families[name].matrix[:, 0]
            assert abs(np.corrcoef(target, effect)[0, 1]) > 0.15


class TestDatacenterFaithfulness:
    @given(st.integers(0, 200))
    @settings(max_examples=5, deadline=None)
    def test_dseparation_reflected_in_data(self, seed):
        """Conditioning on disk_io weakens the disk_io -> write_latency
        driven dependence between input rate and write latency relative
        to marginal dependence (the SCM is Markov to its DAG).

        When the marginal dependence is itself within sampling noise of
        zero, the conditioned estimate can exceed it by more than any
        fixed slack without violating d-separation, so the bound allows
        a weak-signal noise floor (both estimates stay below 0.25 for
        every seed in the strategy's domain, max observed 0.223; with a
        genuinely strong marginal dependence the ``marginal + 0.08``
        branch still requires conditioning to reduce it)."""
        model = DataCenterModel(ClusterConfig(n_samples=240, seed=seed))
        values = model.simulate().values
        load = values["pipeline_input_rate@pipeline-1"]
        disk_io = values["disk_io@datanode-1"]
        write = values["disk_write_latency@datanode-1"]
        marginal = abs(partial_correlation(load, write))
        conditioned = abs(partial_correlation(load, write,
                                              disk_io[:, None]))
        assert conditioned <= max(marginal + 0.08, 0.25)

    @given(st.integers(0, 200))
    @settings(max_examples=5, deadline=None)
    def test_all_metrics_nonnegative(self, seed):
        model = DataCenterModel(ClusterConfig(n_samples=120, seed=seed))
        result = model.simulate()
        for var in model.var_series:
            assert result.values[var].min() >= 0.0, var
