"""Tests for the §5 case-study scenarios (structure + ranking behaviour)."""

import numpy as np
import pytest

from repro.workloads.scenarios import (
    conditioning_scenario,
    conditioning_scenario_fixed,
    fault_injection_scenario,
    periodic_namenode_scenario,
    raid_intervention_experiment,
    sawtooth_temperature_scenario,
    weekly_raid_scenario,
)


class TestFaultInjectionScenario:
    """§5.1 / Table 3."""

    @pytest.fixture(scope="class")
    def scenario(self):
        return fault_injection_scenario(seed=0)

    def test_labels(self, scenario):
        assert "tcp_retransmits" in scenario.causes
        assert "pipeline_latency" in scenario.effects

    def test_retransmits_in_top_ranks(self, scenario):
        table = scenario.session().explain(scorer="CorrMax")
        rank = table.rank_of("tcp_retransmits")
        assert rank is not None and rank <= 6

    def test_runtime_spike_visible(self, scenario):
        """Figure 5's shape: the fault window dominates the runtime."""
        start, end = scenario.fault_window
        sess = scenario.session()
        sess.set_time_ranges(0, 288, explain_start=start, explain_end=end)
        assert sess.event_lift("pipeline_runtime") > 2.0


class TestConditioningScenario:
    """§5.2: conditioning on input size exposes the network issue."""

    @pytest.fixture(scope="class")
    def scenario(self):
        return conditioning_scenario(seed=0)

    def test_unconditioned_is_load_dominated(self, scenario):
        sess = scenario.session()
        sess.set_condition(None)
        table = sess.explain(scorer="L2")
        assert table.results[0].family in ("pipeline_input_rate",
                                           "hdfs_save_time",
                                           "namenode_rpc_rate")

    def test_conditioning_elevates_network_families(self, scenario):
        sess = scenario.session()
        sess.set_condition(None)
        raw = sess.explain(scorer="L2")
        sess.set_condition("pipeline_input_rate")
        conditioned = sess.explain(scorer="L2")
        raw_rank = raw.rank_of("tcp_retransmits")
        cond_rank = conditioned.rank_of("tcp_retransmits")
        assert cond_rank is not None
        assert cond_rank < raw_rank
        assert cond_rank <= 6

    def test_fix_removes_retransmit_signal(self, scenario):
        """§5.2's post-fix re-analysis: retransmissions no longer rank."""
        fixed = conditioning_scenario_fixed(seed=0)
        sess = fixed.session()
        sess.set_condition("pipeline_input_rate")
        table = sess.explain(scorer="L2")
        score = table.score_of("tcp_retransmits")
        assert score is not None and score < 0.1


class TestPeriodicNamenodeScenario:
    """§5.3 / Table 4."""

    @pytest.fixture(scope="class")
    def scenario(self):
        return periodic_namenode_scenario(seed=0)

    def test_namenode_families_rank_high(self, scenario):
        table = scenario.session().explain(scorer="CorrMax")
        namenode_ranks = [table.rank_of(f) for f in
                          ("namenode_rpc_rate", "namenode_rpc_latency",
                           "namenode_live_threads")]
        assert min(r for r in namenode_ranks if r is not None) <= 6

    def test_gc_time_negatively_correlated(self, scenario):
        """The paper's clue: smaller GC during high runtime."""
        store = scenario.store
        from repro.tsdb import SeriesId
        _, runtime = store.arrays(SeriesId.make(
            "pipeline_runtime", {"pipeline_name": "pipeline-1"}))
        _, gc = store.arrays(SeriesId.make(
            "namenode_gc_time", {"host": "namenode-1"}))
        assert np.corrcoef(runtime, gc)[0, 1] < -0.1

    def test_spike_periodicity(self, scenario):
        """Figure 7: spikes every 15 samples."""
        from repro.core.pseudocause import estimate_period
        from repro.tsdb import SeriesId
        _, runtime = scenario.store.arrays(SeriesId.make(
            "pipeline_runtime", {"pipeline_name": "pipeline-1"}))
        period = estimate_period(runtime - runtime.mean(), max_period=60,
                                 min_period=5)
        assert period in range(13, 18)


class TestWeeklyRaidScenario:
    """§5.4 / Table 5 / Figure 8."""

    @pytest.fixture(scope="class")
    def scenario(self):
        return weekly_raid_scenario(seed=0)

    def test_weekly_period_in_runtime(self, scenario):
        """Figure 8: the *spike indicator* has a one-week period (the
        raw ACF is dominated by the diurnal cycle, which is exactly why
        the paper needed a month-long range to see the pattern)."""
        from repro.core.pseudocause import estimate_period
        from repro.tsdb import SeriesId
        _, runtime = scenario.store.arrays(SeriesId.make(
            "pipeline_runtime", {"pipeline_name": "pipeline-1"}))
        period = scenario.extra["period"]
        spikes = (runtime > runtime.mean()
                  + 1.5 * runtime.std()).astype(float)
        estimated = estimate_period(spikes - spikes.mean(),
                                    max_period=period + 30,
                                    min_period=period // 2 + 1)
        assert abs(estimated - period) <= 3

    def test_disk_families_and_raid_sensor_rank(self, scenario):
        table = scenario.session().explain(scorer="CorrMax")
        disk_ranks = [table.rank_of(f) for f in
                      ("disk_io", "disk_write_latency",
                       "raid_temperature", "load_avg")]
        assert min(r for r in disk_ranks if r is not None) <= 7

    def test_raid_temperature_is_cause_label(self, scenario):
        assert "raid_temperature" in scenario.causes


class TestRaidInterventionExperiment:
    """Figure 9: runtime instability tracks the capacity knob."""

    def test_segments_ordered_by_capacity(self):
        scenario = raid_intervention_experiment(seed=0)
        from repro.tsdb import SeriesId
        _, runtime = scenario.store.arrays(SeriesId.make(
            "pipeline_runtime", {"pipeline_name": "pipeline-1"}))
        quarter = scenario.extra["segments"]
        seg_default = runtime[:quarter].mean()
        seg_off = runtime[quarter:2 * quarter].mean()
        seg_low = runtime[3 * quarter:].mean()
        assert seg_default > seg_off + 2.0
        assert seg_default > seg_low
        assert seg_low < seg_off + 3.0       # 5% cap is nearly as good


class TestSawtoothScenario:
    """Figure 14: a high score that does not explain the event."""

    def test_temperature_scores_high_but_misses_spike(self):
        scenario = sawtooth_temperature_scenario(seed=0)
        sess = scenario.session()
        table = sess.explain(scorer="L2")
        temp_score = table.score_of("cpu_temperature")
        disk_score = table.score_of("disk_write_latency")
        assert temp_score > 0.3          # sawtooth is well explained...
        spike_lo, spike_hi = scenario.fault_window
        sess.set_time_ranges(0, 400, explain_start=spike_lo,
                             explain_end=spike_hi)
        # ...but the event window is anomalous only in disk latency.
        assert sess.event_lift("disk_write_latency") > \
            sess.event_lift("cpu_temperature")
        assert disk_score > 0.0
