"""Unit tests for the flow-trace generator and ingest round trip."""

import numpy as np
import pytest

from repro.tsdb.ingest import parse_line
from repro.workloads.flows import (
    FlowConfig,
    FlowEvent,
    FlowGenerator,
    aggregate_flow_features,
)


class TestFlowEvent:
    def test_line_round_trips_through_ingest(self):
        event = FlowEvent(timestamp=3, src="datanode-1",
                          dest="datanode-2", srcport=40000, destport=80,
                          packetcount=10, bytecount=1000, retransmits=1)
        points = parse_line(event.to_line())
        names = {p.series.name for p in points}
        assert names == {"flow.bytecount", "flow.packetcount",
                         "flow.retransmits"}
        assert all(p.timestamp == 3 for p in points)
        assert all(p.series.tag("src") == "datanode-1" for p in points)


class TestFlowGenerator:
    @pytest.fixture(scope="class")
    def generator(self):
        return FlowGenerator(FlowConfig(n_samples=30, seed=1))

    def test_flow_keys_sampled(self, generator):
        assert generator.n_flows > 0

    def test_events_time_ordered(self, generator):
        timestamps = [e.timestamp for e in generator.events()]
        assert timestamps == sorted(timestamps)

    def test_deterministic_pairs(self):
        a = FlowGenerator(FlowConfig(seed=5))
        b = FlowGenerator(FlowConfig(seed=5))
        assert a._pairs == b._pairs

    def test_to_store_round_trip(self, generator):
        store = generator.to_store()
        assert set(store.metric_names()) == {"flow.bytecount",
                                             "flow.packetcount",
                                             "flow.retransmits"}
        assert store.num_points() > 0

    def test_drop_window_raises_retransmits(self):
        config = FlowConfig(n_samples=40, seed=2)
        clean = FlowGenerator(config).to_store()
        faulty = FlowGenerator(config).to_store(drop_window=(20, 30))

        def total_retransmits(store, lo, hi):
            total = 0.0
            for sid in store.find(name="flow.retransmits"):
                _, values = store.arrays(sid, start=lo, end=hi)
                total += values.sum()
            return total

        clean_in = total_retransmits(clean, 20, 30)
        faulty_in = total_retransmits(faulty, 20, 30)
        assert faulty_in > 3 * max(clean_in, 1.0)

    def test_sql_aggregation(self, generator):
        table = aggregate_flow_features(generator.to_store())
        assert table.columns[:2] == ["timestamp", "src"]
        assert len(table) > 0
        retrans = [r[2] for r in table.rows if r[2] is not None]
        assert all(v >= 0 for v in retrans)
