"""Unit tests for the fault injectors."""

import numpy as np
import pytest

from repro.workloads.datacenter import ClusterConfig, DataCenterModel
from repro.workloads.faults import (
    GcPressureFault,
    HypervisorDropFault,
    InputSkewFault,
    MemoryLeakFault,
    NamenodeScanFault,
    PacketDropFault,
    RaidCheckFault,
    SlowDiskFault,
)


def fresh_model(n=120, seed=2):
    return DataCenterModel(ClusterConfig(n_samples=n, seed=seed))


class TestPacketDropFault:
    def test_raises_retransmits_in_window(self):
        model = fresh_model()
        PacketDropFault(start=50, end=80).attach(model)
        values = model.simulate().values
        retrans = values["tcp_retransmits@datanode-1"]
        assert retrans[50:80].mean() > retrans[:50].mean() + 10

    def test_drop_rate_scales_impact(self):
        low = fresh_model()
        PacketDropFault(start=50, end=80, drop_rate=0.05).attach(low)
        high = fresh_model()
        PacketDropFault(start=50, end=80, drop_rate=0.20).attach(high)
        low_r = low.simulate().values["tcp_retransmits@datanode-1"]
        high_r = high.simulate().values["tcp_retransmits@datanode-1"]
        assert high_r[50:80].mean() > low_r[50:80].mean()


class TestNamenodeScanFault:
    def test_periodic_rpc_spikes(self):
        model = fresh_model(n=150)
        NamenodeScanFault(period=15, duration=5).attach(model)
        rate = model.simulate().values["namenode_rpc_rate@namenode-1"]
        in_scan = rate[np.arange(150) % 15 < 5]
        out_scan = rate[np.arange(150) % 15 >= 5]
        assert in_scan.mean() > out_scan.mean() + 30

    def test_gc_suppressed_during_scans(self):
        model = fresh_model(n=150)
        NamenodeScanFault(period=15, duration=5).attach(model)
        gc = model.simulate().values["namenode_gc_time@namenode-1"]
        in_scan = gc[np.arange(150) % 15 < 5]
        out_scan = gc[np.arange(150) % 15 >= 5]
        assert in_scan.mean() < out_scan.mean()


class TestRaidCheckFault:
    def test_capacity_scales_impact(self):
        full = fresh_model(n=100)
        RaidCheckFault(period=50, duration=10, capacity=0.20).attach(full)
        capped = fresh_model(n=100)
        RaidCheckFault(period=50, duration=10, capacity=0.05).attach(capped)
        io_full = full.simulate().values["disk_io@datanode-1"]
        io_capped = capped.simulate().values["disk_io@datanode-1"]
        window = np.arange(100) % 50 < 10
        assert io_full[window].mean() > io_capped[window].mean() + 10

    def test_exports_temperature_sensor(self):
        model = fresh_model(n=100)
        RaidCheckFault(period=50, duration=10).attach(model)
        store = model.simulate().store
        assert "raid_temperature" in store.metric_names()


class TestLocalisedFaults:
    def test_slow_disk_hits_one_node_only(self):
        model = fresh_model()
        SlowDiskFault(start=40, end=90, node_index=1).attach(model)
        values = model.simulate().values
        hit = values["disk_write_latency@datanode-2"]
        spared = values["disk_write_latency@datanode-5"]
        assert hit[40:90].mean() > spared[40:90].mean() + 5

    def test_gc_pressure_hits_one_pipeline(self):
        model = fresh_model()
        GcPressureFault(start=40, end=90, pipeline_index=0).attach(model)
        values = model.simulate().values
        hit = values["jvm_gc_time@pipeline-1"]
        spared = values["jvm_gc_time@pipeline-2"]
        assert hit[40:90].mean() > spared[40:90].mean() + 3

    def test_input_skew_drives_all_pipelines(self):
        model = fresh_model()
        InputSkewFault(start=40, end=90).attach(model)
        values = model.simulate().values
        for pipe in model.pipelines():
            load = values[f"pipeline_input_rate@{pipe}"]
            assert load[40:90].mean() > load[:40].mean() + 20

    def test_memory_leak_drifts_upward(self):
        model = fresh_model(n=200)
        MemoryLeakFault(severity=1.0).attach(model)
        values = model.simulate().values
        mem = values["mem_util@web-1"]
        assert mem[-40:].mean() > mem[:40].mean() + 10

    def test_hypervisor_fault_takes_custom_signal(self):
        model = fresh_model()
        signal = np.zeros(120)
        signal[60:] = 1.0
        HypervisorDropFault(signal=signal).attach(model)
        retrans = model.simulate().values["tcp_retransmits@datanode-1"]
        assert retrans[60:].mean() > retrans[:60].mean() + 3
