"""Unit tests for signal building blocks."""

import numpy as np
import pytest

from repro.workloads import signals


class TestPeriodicSignals:
    def test_diurnal_period(self):
        s = signals.diurnal(2880, amplitude=2.0, period=1440)
        assert s[0] == pytest.approx(0.0, abs=1e-9)
        assert s[360] == pytest.approx(2.0, abs=1e-9)      # quarter period
        assert s[1440] == pytest.approx(0.0, abs=1e-6)

    def test_weekly_alias(self):
        s = signals.weekly(signals.MINUTES_PER_WEEK, amplitude=1.0)
        assert s.shape == (signals.MINUTES_PER_WEEK,)

    def test_sawtooth_resets(self):
        s = signals.sawtooth(100, period=10, amplitude=5.0)
        assert s[0] == 0.0
        assert s[9] == pytest.approx(4.5)
        assert s[10] == 0.0

    def test_sawtooth_bad_period(self):
        with pytest.raises(ValueError):
            signals.sawtooth(10, period=0)


class TestWindows:
    def test_window_bounds(self):
        w = signals.window(10, 3, 6, level=2.0)
        assert w.tolist() == [0, 0, 0, 2, 2, 2, 0, 0, 0, 0]

    def test_window_clipped_to_range(self):
        w = signals.window(5, -3, 99, level=1.0)
        assert w.tolist() == [1, 1, 1, 1, 1]

    def test_periodic_windows(self):
        w = signals.periodic_windows(30, period=10, duration=3)
        assert w[:10].tolist() == [1, 1, 1, 0, 0, 0, 0, 0, 0, 0]
        assert np.array_equal(w[:10], w[10:20])

    def test_periodic_windows_offset(self):
        w = signals.periodic_windows(20, period=10, duration=2, offset=4)
        assert w[4] == 1.0 and w[5] == 1.0 and w[6] == 0.0

    def test_periodic_windows_validation(self):
        with pytest.raises(ValueError):
            signals.periodic_windows(10, period=0, duration=1)

    def test_spikes(self):
        s = signals.spikes(20, [5, 15], width=2, height=3.0)
        assert s[5] == 3.0 and s[6] == 3.0 and s[7] == 0.0
        assert s[15] == 3.0

    def test_step(self):
        s = signals.step(10, 4, level=2.0)
        assert s[3] == 0.0 and s[4] == 2.0 and s[9] == 2.0


class TestStochasticSignals:
    def test_random_walk_starts_at_origin(self, rng):
        w = signals.random_walk(100, rng, start=5.0)
        assert w[0] == 5.0

    def test_random_walk_spread_grows(self, rng):
        walks = np.array([signals.random_walk(200, np.random.default_rng(i))
                          for i in range(50)])
        assert walks[:, -1].std() > walks[:, 10].std()

    def test_bursty_counts_nonnegative(self, rng):
        counts = signals.bursty_counts(500, rng)
        assert counts.min() >= 0

    def test_bursty_counts_have_bursts(self, rng):
        counts = signals.bursty_counts(2000, rng, rate=5.0,
                                       burst_prob=0.05)
        assert counts.max() > 5 * counts.mean()
