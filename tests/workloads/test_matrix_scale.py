"""The --scale knob: longer traces, unchanged scale=1 output."""

import numpy as np
import pytest

from repro.workloads.matrix import (
    N_SAMPLES,
    MatrixError,
    ScenarioSpec,
    build_scenario,
    matrix_specs,
    validate_scenario,
)

SMOKE = matrix_specs("smoke")


def arrays_of(scenario):
    return {str(series): (ts.tobytes(), vals.tobytes())
            for series, ts, vals in scenario.store.iter_arrays()}


@pytest.mark.parametrize("spec", SMOKE, ids=lambda s: s.family)
def test_scale_one_is_bitwise_identical_to_default(spec):
    assert arrays_of(build_scenario(spec)) == \
        arrays_of(build_scenario(spec, scale=1))


@pytest.mark.parametrize("spec", SMOKE, ids=lambda s: s.family)
def test_scale_multiplies_trace_length(spec):
    base = build_scenario(spec)
    scaled = build_scenario(spec, scale=3)
    for series, ts, _ in scaled.store.iter_arrays():
        assert ts.size == 3 * N_SAMPLES
    assert scaled.store.num_points() == 3 * base.store.num_points()


@pytest.mark.parametrize("spec", SMOKE, ids=lambda s: s.family)
def test_scaled_scenarios_keep_labels_and_schema(spec):
    base = build_scenario(spec)
    scaled = build_scenario(spec, scale=2)
    validate_scenario(scaled)
    assert scaled.target == base.target
    assert scaled.causes == base.causes
    assert scaled.effects == base.effects
    if scaled.fault_window is not None:
        start, end = scaled.fault_window
        assert 0 <= start < end <= 2 * N_SAMPLES
        # The window generator draws from ranges proportional to the
        # trace, so a scaled incident still sits mid-trace.
        assert start >= (2 * N_SAMPLES) // 3


def test_scale_is_deterministic():
    spec = ScenarioSpec("slow_burn", "base", 7)
    assert arrays_of(build_scenario(spec, scale=2)) == \
        arrays_of(build_scenario(spec, scale=2))


def test_scale_rejects_nonpositive():
    with pytest.raises(MatrixError):
        build_scenario(SMOKE[0], scale=0)


def test_replay_matrix_forwards_scale():
    from repro.evalkit.replay import replay_matrix

    spec = ScenarioSpec("correlated_storm", "base", 0)
    card = replay_matrix([spec], scorers=("L2-P50",), ks=(1,), scale=2)
    assert card.runs[0].n_samples == 2 * N_SAMPLES
