"""Unit tests for the Figure 1 pipeline generator."""

import numpy as np

from repro.core.engine import ExplainItSession
from repro.workloads.pipeline import figure1_pipeline


class TestFigure1Pipeline:
    def test_store_contents(self):
        store, dag = figure1_pipeline(n_samples=200, seed=0)
        assert set(store.metric_names()) == {"input_rate", "runtime",
                                             "disk"}
        assert len(store.find(name="disk")) == 3

    def test_ground_truth_structure(self):
        _, dag = figure1_pipeline(n_samples=100, seed=0)
        assert "runtime_sec" in dag.descendants("events_per_sec")
        assert "fs_write_latency_ms" in dag.descendants("runtime_sec")
        # Z -> Y -> X chain: Z d-separated from X given Y.
        assert dag.d_separated("events_per_sec", "fs_write_latency_ms",
                               given=["runtime_sec"])

    def test_engine_finds_both_neighbours(self):
        store, _ = figure1_pipeline(n_samples=400, seed=1)
        session = ExplainItSession(store)
        session.set_target("runtime")
        table = session.explain(scorer="L2")
        assert {r.family for r in table.top(2)} == {"input_rate", "disk"}

    def test_conditioning_on_input_keeps_disk(self):
        store, _ = figure1_pipeline(n_samples=400, seed=1)
        session = ExplainItSession(store)
        session.set_target("runtime")
        session.set_condition("input_rate")
        table = session.explain(scorer="L2")
        assert table.results[0].family == "disk"
        assert table.results[0].score > 0.1
