"""Unit tests for log-template mining and log-derived time series."""

import numpy as np
import pytest

from repro.workloads.logs import (
    LogTemplateMiner,
    generate_cluster_logs,
    log_counts_store,
    mask_token,
)


class TestMaskToken:
    @pytest.mark.parametrize("token,expected", [
        ("12345", "<num>"), ("3.14", "<num>"),
        ("deadbeef99", "<id>"), ("0xABCDEF12", "<id>"),
        ("/var/log/app.log", "<path>"),
        ("datanode-3", "<host>"),
        ("INFO", "INFO"), ("served", "served"),
    ])
    def test_masking(self, token, expected):
        assert mask_token(token) == expected


class TestLogTemplateMiner:
    def test_same_shape_lines_share_template(self):
        miner = LogTemplateMiner()
        a = miner.add("INFO datanode-1 served block 123 in 5 ms")
        b = miner.add("INFO datanode-2 served block 456 in 9 ms")
        assert a.template_id == b.template_id
        assert a.count == 2

    def test_different_messages_get_different_templates(self):
        miner = LogTemplateMiner()
        a = miner.add("INFO heartbeat received")
        b = miner.add("ERROR write failed badly")
        assert a.template_id != b.template_id

    def test_near_identical_templates_merge_with_wildcard(self):
        miner = LogTemplateMiner()
        miner.add("connection from web opened")
        merged = miner.add("connection from app opened")
        assert "<*>" in merged.tokens
        assert len(miner.all_templates()) == 1

    def test_counts_accumulate(self):
        miner = LogTemplateMiner()
        for _ in range(5):
            miner.add("INFO tick 1")
        assert miner.all_templates()[0].count == 5


class TestLogCountsStore:
    def test_counts_per_template_per_minute(self):
        records = [
            (0, "ERROR disk failed on datanode-1"),
            (0, "ERROR disk failed on datanode-2"),
            (1, "ERROR disk failed on datanode-1"),
            (1, "INFO all good here now"),
        ]
        store, miner = log_counts_store(records, horizon=3)
        assert len(store) == 2                       # two templates
        error_sid = next(s for s in store.series_ids()
                         if "ERROR" in (s.tag("text") or ""))
        _, counts = store.arrays(error_sid)
        assert counts.tolist() == [2.0, 1.0, 0.0]    # zero-filled

    def test_horizon_inferred(self):
        store, _ = log_counts_store([(4, "INFO tick now")])
        _, counts = store.arrays(store.series_ids()[0])
        assert counts.size == 5


class TestClusterLogs:
    def test_error_burst_visible(self):
        records = list(generate_cluster_logs(
            n_samples=60, error_window=(30, 40), seed=1))
        store, _ = log_counts_store(records, horizon=60)
        error_series = [s for s in store.series_ids()
                        if "ERROR" in (s.tag("text") or "")]
        assert error_series
        _, counts = store.arrays(error_series[0])
        assert counts[30:40].sum() > 5 * max(counts[:30].sum(), 1.0)

    def test_log_family_rankable_by_engine(self):
        """End to end: log-derived families join the causal ranking."""
        from repro.core.engine import ExplainItSession
        from repro.tsdb.model import SeriesId
        rng = np.random.default_rng(2)
        n = 120
        records = list(generate_cluster_logs(
            n_samples=n, error_window=(60, 75), seed=2))
        store, _ = log_counts_store(records, horizon=n)
        # A KPI that reacts to the same underlying fault.
        error_sid = next(s for s in store.series_ids()
                         if "ERROR" in (s.tag("text") or ""))
        _, errors = store.arrays(error_sid)
        kpi = 20 + 2.0 * errors + rng.standard_normal(n)
        store.insert_array(SeriesId.make("pipeline_runtime"),
                           np.arange(n), kpi)
        session = ExplainItSession(store)
        session.set_target("pipeline_runtime")
        table = session.explain(scorer="CorrMax")
        assert table.results[0].family == "log_count"
