"""Unit tests for the Table 6 incident generator."""

import numpy as np
import pytest

from repro.scoring import CorrMaxScorer, L2Scorer
from repro.workloads.incidents import (
    CAUSE_KINDS,
    Incident,
    IncidentSpec,
    make_incident,
    standard_incidents,
)


class TestIncidentSpec:
    def test_bad_cause_kind(self):
        with pytest.raises(ValueError):
            IncidentSpec(1, "mystery")

    def test_kinds_complete(self):
        assert set(CAUSE_KINDS) == {"univariate", "joint",
                                    "weak-univariate", "weak-joint"}


class TestMakeIncident:
    @pytest.fixture(scope="class")
    def univariate(self):
        return make_incident(IncidentSpec(99, "univariate", seed=5))

    @pytest.fixture(scope="class")
    def joint(self):
        return make_incident(IncidentSpec(98, "joint", seed=6,
                                          cause_features=40,
                                          joint_noise=2.0))

    def test_structure(self, univariate):
        assert univariate.target == "target_kpi"
        assert univariate.causes == {"root_cause_service"}
        assert len(univariate.effects) == 3
        assert univariate.n_features > 100

    def test_deterministic(self):
        spec = IncidentSpec(1, "univariate", seed=7)
        a = make_incident(spec)
        b = make_incident(spec)
        assert np.array_equal(a.families["target_kpi"].matrix,
                              b.families["target_kpi"].matrix)

    def test_univariate_cause_found_by_corrmax(self, univariate):
        y = univariate.families["target_kpi"].matrix
        x = univariate.families["root_cause_service"].matrix
        assert CorrMaxScorer().score(x, y) > 0.8

    def test_joint_cause_invisible_to_corrmax(self, joint):
        y = joint.families["target_kpi"].matrix
        x = joint.families["root_cause_service"].matrix
        corr_max = CorrMaxScorer().score(x, y)
        joint = L2Scorer().score(x, y)
        assert corr_max < 0.5
        assert joint > 0.4
        assert joint > corr_max

    def test_effects_track_target(self, univariate):
        y = univariate.families["target_kpi"].matrix[:, 0]
        for name in univariate.effects:
            eff = univariate.families[name].matrix[:, 0]
            assert abs(np.corrcoef(y, eff)[0, 1]) > 0.2

    def test_background_unrelated_to_activation(self, univariate):
        activation = univariate.extra["activation"]
        bg = univariate.families["background_0"].matrix[:, 0]
        assert abs(np.corrcoef(activation, bg)[0, 1]) < 0.35


class TestStandardIncidents:
    @pytest.fixture(scope="class")
    def incidents(self):
        return standard_incidents()

    def test_eleven_incidents(self, incidents):
        assert len(incidents) == 11
        assert [i.name for i in incidents] == [
            f"incident-{k}" for k in range(1, 12)]

    def test_scale_parameter(self):
        small = standard_incidents(scale=0.5)[0]
        assert small.n_families < standard_incidents()[0].n_families

    def test_kind_mix(self, incidents):
        kinds = {i.spec.cause_kind for i in incidents}
        assert kinds == set(CAUSE_KINDS)

    def test_family_feature_counts_reported(self, incidents):
        for incident in incidents:
            assert incident.n_families >= 20
            assert incident.n_features >= incident.n_families
