"""Property tests: every scenario family is seed-deterministic.

The replay harness's CI gate depends on these invariants: the same
(family, variant, seed) key must reproduce byte-identical stores,
families and labels in any process, and different seeds must generate
different traces (no accidental seed collapse).
"""

import io

from hypothesis import given, settings, strategies as st

from repro.tsdb.persist import dump_store
from repro.workloads.matrix import (
    SCENARIO_FAMILIES,
    ScenarioSpec,
    build_scenario,
    validate_scenario,
)

FAMILIES = sorted(SCENARIO_FAMILIES)
VARIANTS = ("base", "noisy", "wide")


def store_bytes(scenario) -> bytes:
    """Canonical serialisation of the scenario's store."""
    buffer = io.StringIO()
    dump_store(scenario.store, buffer)
    return buffer.getvalue().encode()


def family_bytes(scenario) -> list[tuple[str, bytes, bytes, tuple[str, ...]]]:
    """Family matrices, grids, and member names, byte-exact."""
    return [(f.name, f.matrix.tobytes(), f.grid.tobytes(),
             tuple(f.members))
            for f in scenario.families]


class TestSeedDeterminism:
    @given(family=st.sampled_from(FAMILIES),
           variant=st.sampled_from(VARIANTS),
           seed=st.integers(0, 2 ** 16))
    @settings(max_examples=20, deadline=None)
    def test_same_seed_byte_identical(self, family, variant, seed):
        spec = ScenarioSpec(family, variant, seed)
        a = build_scenario(spec)
        b = build_scenario(spec)
        assert store_bytes(a) == store_bytes(b)
        assert family_bytes(a) == family_bytes(b)
        assert (a.target, a.causes, a.effects) == (b.target, b.causes,
                                                   b.effects)
        assert a.fault_window == b.fault_window

    @given(family=st.sampled_from(FAMILIES),
           variant=st.sampled_from(VARIANTS),
           seed_a=st.integers(0, 2 ** 10),
           seed_b=st.integers(0, 2 ** 10))
    @settings(max_examples=15, deadline=None)
    def test_distinct_seeds_distinct_traces(self, family, variant,
                                            seed_a, seed_b):
        if seed_a == seed_b:
            return
        a = build_scenario(ScenarioSpec(family, variant, seed_a))
        b = build_scenario(ScenarioSpec(family, variant, seed_b))
        assert store_bytes(a) != store_bytes(b)

    @given(family=st.sampled_from(FAMILIES),
           variant=st.sampled_from(VARIANTS),
           seed=st.integers(0, 2 ** 16))
    @settings(max_examples=20, deadline=None)
    def test_generated_tags_validate_against_schema(self, family, variant,
                                                    seed):
        validate_scenario(build_scenario(ScenarioSpec(family, variant,
                                                      seed)))

    @given(seed=st.integers(0, 2 ** 16))
    @settings(max_examples=10, deadline=None)
    def test_families_distinct_for_one_seed(self, seed):
        """Different families never alias to the same trace."""
        dumps = {f: store_bytes(build_scenario(ScenarioSpec(f, "base",
                                                            seed)))
                 for f in FAMILIES}
        assert len(set(dumps.values())) == len(FAMILIES)
