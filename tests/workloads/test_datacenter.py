"""Unit tests for the data-centre SCM model."""

import numpy as np
import pytest

from repro.workloads.datacenter import ClusterConfig, DataCenterModel
from repro.workloads.faults import PacketDropFault


@pytest.fixture(scope="module")
def model():
    return DataCenterModel(ClusterConfig(n_samples=120, seed=3)).build()


class TestClusterConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_pipelines=0)
        with pytest.raises(ValueError):
            ClusterConfig(n_samples=5)

    def test_entity_names(self, model):
        assert model.pipelines()[0] == "pipeline-1"
        assert len(model.datanodes()) == 6
        assert model.service_hosts()[0].startswith("web")


class TestBuild:
    def test_metric_inventory(self, model):
        names = {s.name for s in model.var_series.values()}
        expected = {"pipeline_runtime", "pipeline_latency",
                    "pipeline_input_rate", "hdfs_save_time", "jvm_gc_time",
                    "disk_io", "disk_write_latency", "disk_read_latency",
                    "tcp_retransmits", "cpu_util", "load_avg", "mem_util",
                    "namenode_rpc_rate", "namenode_rpc_latency",
                    "namenode_gc_time", "namenode_live_threads"}
        assert expected <= names

    def test_build_idempotent(self, model):
        before = len(model.var_series)
        model.build()
        assert len(model.var_series) == before

    def test_causal_chain_present(self, model):
        dag = model.scm.dag
        assert "pipeline_runtime@pipeline-1" in dag.descendants(
            "disk_write_latency@datanode-1")
        assert "pipeline_latency@pipeline-1" in dag.descendants(
            "pipeline_runtime@pipeline-1")


class TestSimulate:
    def test_store_populated(self, model):
        result = model.simulate()
        assert len(result.store) == len(model.var_series)
        assert result.store.num_points() == \
            len(model.var_series) * model.config.n_samples

    def test_metrics_nonnegative(self, model):
        result = model.simulate()
        for var in model.var_series:
            assert result.values[var].min() >= 0.0, var

    def test_deterministic_given_seed(self):
        a = DataCenterModel(ClusterConfig(n_samples=60, seed=9)).simulate()
        b = DataCenterModel(ClusterConfig(n_samples=60, seed=9)).simulate()
        var = "pipeline_runtime@pipeline-1"
        assert np.array_equal(a.values[var], b.values[var])

    def test_runtime_tracks_input(self, model):
        """The healthy system's structural story: load drives runtime."""
        result = model.simulate()
        load = result.values["pipeline_input_rate@pipeline-1"]
        runtime = result.values["pipeline_runtime@pipeline-1"]
        assert np.corrcoef(load, runtime)[0, 1] > 0.3


class TestFaultsAndLabels:
    def test_fault_raises_runtime_in_window(self):
        config = ClusterConfig(n_samples=200, seed=5)
        clean = DataCenterModel(config)
        clean_runtime = clean.simulate().values[
            "pipeline_runtime@pipeline-1"]
        faulty = DataCenterModel(config)
        PacketDropFault(start=100, end=130).attach(faulty)
        faulty_runtime = faulty.simulate().values[
            "pipeline_runtime@pipeline-1"]
        in_window = faulty_runtime[100:130].mean()
        outside = faulty_runtime[:100].mean()
        assert in_window > outside + 3.0
        # Same seed: outside the window the traces agree closely.
        assert abs(clean_runtime[:100].mean() - outside) < 1.0

    def test_classify_families(self):
        model = DataCenterModel(ClusterConfig(n_samples=120, seed=1))
        PacketDropFault(start=60, end=80).attach(model)
        causes, effects = model.classify_families(
            "pipeline_runtime",
            redundant={"pipeline_latency", "hdfs_save_time"})
        assert "tcp_retransmits" in causes
        assert "disk_write_latency" in causes
        assert "pipeline_latency" in effects
        assert "hdfs_save_time" in effects
        assert "pipeline_runtime" not in causes | effects
        assert not causes & effects

    def test_unmonitored_fault_variable(self):
        model = DataCenterModel(ClusterConfig(n_samples=120, seed=1))
        var = PacketDropFault(start=10, end=20).attach(model)
        assert var not in model.var_series      # fault is unobserved
        result = model.simulate()
        assert not any(s.name == "packet_drop"
                       for s in result.store.series_ids())

    def test_fault_signal_length_checked(self, model):
        with pytest.raises(ValueError):
            model.add_fault_variable("bad", np.zeros(7), [])

    def test_fault_unknown_target_checked(self):
        model = DataCenterModel(ClusterConfig(n_samples=60, seed=1)).build()
        with pytest.raises(ValueError):
            model.add_fault_variable(
                "bad", np.zeros(60), [("nonexistent@host", 1.0)])

    def test_intervene_validates(self, model):
        with pytest.raises(ValueError):
            model.intervene("zzz", np.zeros(model.config.n_samples))
        with pytest.raises(ValueError):
            model.intervene("pipeline_input_rate@pipeline-1", np.zeros(3))
