"""Unit tests for the incident matrix (scenario families + registry)."""

import numpy as np
import pytest

from repro.workloads.matrix import (
    FULL_SEEDS,
    N_SAMPLES,
    SCENARIO_FAMILIES,
    MatrixError,
    ScenarioSpec,
    build_scenario,
    matrix_specs,
    validate_scenario,
)


class TestRegistry:
    def test_five_families_registered(self):
        assert len(SCENARIO_FAMILIES) == 5
        assert set(SCENARIO_FAMILIES) == {
            "microservice_cascade", "network_congestion",
            "seasonal_contamination", "correlated_storm", "slow_burn",
        }

    def test_every_family_has_three_variants(self):
        for family in SCENARIO_FAMILIES.values():
            assert set(family.variants) == {"base", "noisy", "wide"}

    def test_unknown_family_rejected(self):
        with pytest.raises(MatrixError, match="unknown scenario family"):
            build_scenario(ScenarioSpec("quantum_flap", "base", 0))

    def test_unknown_variant_rejected(self):
        with pytest.raises(MatrixError, match="unknown variant"):
            build_scenario(ScenarioSpec("slow_burn", "hyper", 0))

    def test_spec_key_format(self):
        spec = ScenarioSpec("slow_burn", "wide", 7)
        assert spec.key == "slow_burn/wide#7"

    def test_smoke_matrix_is_one_base_cell_per_family(self):
        specs = matrix_specs("smoke")
        assert len(specs) == 5
        assert {s.family for s in specs} == set(SCENARIO_FAMILIES)
        assert all(s.variant == "base" and s.seed == 0 for s in specs)

    def test_full_matrix_covers_every_cell(self):
        specs = matrix_specs("full")
        assert len(specs) == 5 * 3 * len(FULL_SEEDS)
        assert len(set(specs)) == len(specs)

    def test_unknown_matrix_rejected(self):
        with pytest.raises(MatrixError, match="unknown matrix"):
            matrix_specs("galaxy")


@pytest.mark.parametrize("family", sorted(SCENARIO_FAMILIES))
class TestScenarioInvariants:
    def test_smoke_scenario_well_formed(self, family):
        scenario = build_scenario(ScenarioSpec(family, "base", 0))
        assert scenario.name == f"{family}/base#0"
        # The target exists and is labelled neither cause nor effect.
        assert scenario.target in scenario.families
        assert scenario.target not in scenario.causes | scenario.effects
        assert not scenario.causes & scenario.effects
        for name in scenario.causes | scenario.effects:
            assert name in scenario.families
        # Families share one grid of the advertised length.
        lengths = {f.n_samples for f in scenario.families}
        assert lengths == {N_SAMPLES}
        # No NaN survives family materialisation.
        for fam in scenario.families:
            assert np.isfinite(fam.matrix).all()
        # The store backs the family set: same total feature count.
        assert scenario.families.total_features() == len(
            scenario.store.series_ids())

    def test_schema_validates(self, family):
        for variant in SCENARIO_FAMILIES[family].variants:
            validate_scenario(build_scenario(ScenarioSpec(family, variant, 3)))

    def test_fault_window_inside_trace(self, family):
        scenario = build_scenario(ScenarioSpec(family, "base", 1))
        if scenario.fault_window is not None:
            start, end = scenario.fault_window
            assert 0 <= start < end <= N_SAMPLES

    def test_wide_variant_is_wider(self, family):
        base = build_scenario(ScenarioSpec(family, "base", 0))
        wide = build_scenario(ScenarioSpec(family, "wide", 0))
        assert (wide.families.total_features()
                > base.families.total_features())


class TestSchemaEnforcement:
    def test_unknown_tag_key_is_a_violation(self):
        scenario = build_scenario(
            ScenarioSpec("slow_burn", "base", 0))
        # Sneak a series with an out-of-schema tag into the store.
        from repro.tsdb.model import SeriesId
        scenario.store.insert_array(
            SeriesId.make("heap_used", {"rack": "r1"}),
            np.arange(4), np.ones(4))
        with pytest.raises(MatrixError, match="unknown tag key"):
            validate_scenario(scenario)

    def test_unknown_metric_is_a_violation(self):
        scenario = build_scenario(
            ScenarioSpec("slow_burn", "base", 0))
        from repro.tsdb.model import SeriesId
        scenario.store.insert_array(
            SeriesId.make("mystery_metric", {"worker": "worker-0"}),
            np.arange(4), np.ones(4))
        with pytest.raises(MatrixError, match="outside schema"):
            validate_scenario(scenario)

    def test_bad_tag_value_is_a_violation(self):
        scenario = build_scenario(
            ScenarioSpec("slow_burn", "base", 0))
        from repro.tsdb.model import SeriesId
        scenario.store.insert_array(
            SeriesId.make("heap_used", {"worker": "the-big-one"}),
            np.arange(4), np.ones(4))
        with pytest.raises(MatrixError, match="fails"):
            validate_scenario(scenario)
