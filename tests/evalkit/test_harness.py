"""Unit tests for the Table 6 harness (on a reduced incident suite)."""

import pytest

from repro.evalkit import evaluate_scorers, format_table6, timing_summary
from repro.workloads.incidents import IncidentSpec, make_incident


@pytest.fixture(scope="module")
def small_result():
    incidents = [
        make_incident(IncidentSpec(1, "univariate", n_background=10,
                                   n_large_families=0, n_samples=120,
                                   seed=1)),
        make_incident(IncidentSpec(2, "joint", n_background=10,
                                   n_large_families=0, n_samples=120,
                                   cause_features=20, joint_noise=2.0,
                                   seed=2)),
    ]
    return evaluate_scorers(incidents, scorers=("CorrMax", "L2"),
                            ks=(1, 5, 20))


class TestEvaluateScorers:
    def test_grid_complete(self, small_result):
        assert len(small_result.outcomes) == 4    # 2 incidents x 2 scorers
        assert small_result.incidents == ["incident-1", "incident-2"]

    def test_outcome_fields(self, small_result):
        outcome = small_result.outcomes[0]
        assert outcome.n_families > 10
        assert outcome.gain is None or 0.0 < outcome.gain <= 1.0
        assert set(outcome.success) == {1, 5, 20}

    def test_success_monotone_in_k(self, small_result):
        for outcome in small_result.outcomes:
            assert outcome.success[1] <= outcome.success[5] \
                <= outcome.success[20]

    def test_gain_consistent_with_rank(self, small_result):
        for outcome in small_result.outcomes:
            if outcome.gain is not None:
                assert outcome.first_cause_rank is not None
                assert outcome.gain == pytest.approx(
                    1.0 / outcome.first_cause_rank)

    def test_summary_contains_success_rates(self, small_result):
        summary = small_result.summary("L2")
        assert {"harmonic_mean", "average", "stdev", "success@20"} \
            <= set(summary)
        assert 0.0 <= summary["success@20"] <= 1.0

    def test_by_scorer_slicing(self, small_result):
        rows = small_result.by_scorer("CorrMax")
        assert len(rows) == 2
        assert all(o.scorer == "CorrMax" for o in rows)


class TestFormatting:
    def test_table6_layout(self, small_result):
        text = format_table6(small_result)
        assert "incident-1" in text
        assert "Harmonic mean (discounted gain)" in text
        assert "Success (%) top-20" in text
        assert "CorrMax" in text and "L2" in text

    def test_failures_rendered_as_hyphen(self, small_result):
        text = format_table6(small_result)
        # A '-' appears iff some gain is None.
        has_failure = any(o.gain is None for o in small_result.outcomes)
        lines = [l for l in text.splitlines() if l.startswith("incident")]
        rendered_failure = any(" -" in l for l in lines)
        assert rendered_failure == has_failure


class TestTimingSummary:
    def test_figure10_quantities(self, small_result):
        timings = timing_summary(small_result)
        for scorer in ("CorrMax", "L2"):
            stats = timings[scorer]
            assert stats["mean_seconds_per_family"] > 0.0
            assert stats["max_seconds_per_family"] >= \
                stats["mean_seconds_per_family"]

    def test_joint_slower_than_univariate(self, small_result):
        timings = timing_summary(small_result)
        assert timings["L2"]["mean_seconds_per_family"] > \
            timings["CorrMax"]["mean_seconds_per_family"]
