"""Tests for the incident-replay harness and its grading metrics."""

import json

import pytest

from repro.evalkit.metrics import precision_at_k, recall_at_k
from repro.evalkit.replay import (
    DEFAULT_KS,
    DEFAULT_SCORERS,
    TOP_PREVIEW,
    format_scorecard,
    grade_ranking,
    replay_matrix,
)
from repro.workloads.matrix import ScenarioSpec, build_scenario, matrix_specs

SMOKE = matrix_specs("smoke")


@pytest.fixture(scope="module")
def smoke_card():
    return replay_matrix(SMOKE, scorers=DEFAULT_SCORERS, matrix="smoke")


class TestPrecisionRecallAtK:
    RANKING = ["a", "b", "c", "d", "e"]

    def test_precision_counts_cause_hits(self):
        assert precision_at_k(self.RANKING, {"a", "c"}, 3) == 2 / 3
        assert precision_at_k(self.RANKING, {"e"}, 3) == 0.0
        assert precision_at_k(self.RANKING, {"a"}, 1) == 1.0

    def test_precision_short_ranking_keeps_k_denominator(self):
        assert precision_at_k(["a"], {"a"}, 5) == 1 / 5

    def test_recall_capped_denominator(self):
        # 4 causes, k=3: a perfect top-3 is 1.0, not 0.75.
        assert recall_at_k(["a", "b", "c", "x"], {"a", "b", "c", "d"},
                           3) == 1.0
        assert recall_at_k(["a", "x", "y"], {"a", "b"}, 3) == 0.5

    def test_recall_more_slots_than_causes(self):
        assert recall_at_k(["x", "a", "y"], {"a"}, 3) == 1.0

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            precision_at_k(self.RANKING, {"a"}, 0)
        with pytest.raises(ValueError, match="positive"):
            recall_at_k(self.RANKING, {"a"}, -1)

    def test_recall_needs_causes(self):
        with pytest.raises(ValueError, match="labelled cause"):
            recall_at_k(self.RANKING, set(), 3)


class TestGradeRanking:
    def test_effects_filtered_for_recall_not_gain(self):
        scenario = build_scenario(
            ScenarioSpec("microservice_cascade", "base", 0))
        effect = next(iter(scenario.effects))
        cause = sorted(scenario.causes)[0]
        fillers = [f for f in scenario.families.names()
                   if f not in scenario.causes | scenario.effects][:2]
        ranking = [effect, cause] + fillers
        graded = grade_ranking(ranking, scenario, ks=(1, 2))
        # Gains see the full ranking: the effect costs one rank.
        assert graded["first_cause_rank"] == 2
        assert graded["gain"] == 0.5
        # Recall/precision see the effect-filtered ranking.
        assert graded["recall_at"][1] == 1.0
        assert graded["precision_at"][1] == 1.0
        assert effect not in graded["top_families"]
        assert graded["top_families"][0] == cause

    def test_top_families_preview_is_bounded(self):
        scenario = build_scenario(ScenarioSpec("slow_burn", "wide", 0))
        ranking = sorted(scenario.families.names())
        graded = grade_ranking(ranking, scenario, ks=(3,))
        assert len(graded["top_families"]) == TOP_PREVIEW


class TestReplayMatrix:
    def test_empty_specs_rejected(self):
        with pytest.raises(ValueError, match="no scenario specs"):
            replay_matrix([])

    def test_cell_and_run_counts(self, smoke_card):
        assert len(smoke_card.runs) == len(SMOKE)
        assert len(smoke_card.cells) == len(SMOKE) * len(DEFAULT_SCORERS)
        assert smoke_card.ks == DEFAULT_KS
        for cell in smoke_card.cells:
            assert set(cell.precision_at) == set(DEFAULT_KS)
            assert set(cell.recall_at) == set(DEFAULT_KS)

    def test_cell_lookup(self, smoke_card):
        cell = smoke_card.cell("slow_burn/base#0", "L2")
        assert cell.family == "slow_burn"
        assert cell.scorer == "L2"
        with pytest.raises(KeyError):
            smoke_card.cell("slow_burn/base#0", "NoSuchScorer")

    def test_families_ordered_dedup(self, smoke_card):
        assert smoke_card.families() == [s.family for s in SMOKE]

    def test_min_recall_matches_cells(self, smoke_card):
        worst = smoke_card.min_recall("network_congestion", k=3)
        cells = smoke_card.by_family("network_congestion")
        assert worst == min(c.recall_at[3] for c in cells)
        with pytest.raises(KeyError):
            smoke_card.min_recall("unknown_family", k=3)

    def test_scorer_summary_has_gains_and_pr(self, smoke_card):
        summary = smoke_card.scorer_summary("CorrMax")
        assert {"harmonic_mean", "average"} <= set(summary)
        for k in DEFAULT_KS:
            assert 0.0 <= summary[f"precision@{k}"] <= 1.0
            assert 0.0 <= summary[f"recall@{k}"] <= 1.0


class TestScorecardSerialisation:
    def test_json_deterministic_across_runs(self):
        card_a = replay_matrix(SMOKE[:2], matrix="smoke")
        card_b = replay_matrix(SMOKE[:2], matrix="smoke")
        assert (card_a.to_json(with_timings=False)
                == card_b.to_json(with_timings=False))

    def test_timings_toggle(self, smoke_card):
        with_t = smoke_card.to_payload(with_timings=True)
        without_t = smoke_card.to_payload(with_timings=False)
        assert "rank_seconds" in with_t["cells"][0]
        assert "rank_seconds" not in without_t["cells"][0]
        assert "build_seconds" in with_t["runs"][0]
        assert "build_seconds" not in without_t["runs"][0]

    def test_meta_toggle(self, smoke_card):
        with_meta = smoke_card.to_payload(with_meta=True)
        without_meta = smoke_card.to_payload(with_meta=False)
        assert "backend" in with_meta
        assert "backend" not in without_meta
        assert "transfer" not in without_meta

    def test_transfer_only_reported_for_process_backend(self, smoke_card):
        # Inline run: the transfer label is irrelevant, so it is nulled.
        assert smoke_card.to_payload()["transfer"] is None

    def test_json_round_trips(self, smoke_card):
        doc = json.loads(smoke_card.to_json())
        assert doc["matrix"] == "smoke"
        assert len(doc["cells"]) == len(smoke_card.cells)
        assert set(doc["summary"]) == set(DEFAULT_SCORERS)


class TestFormatScorecard:
    def test_table_contains_every_scenario_and_summary(self, smoke_card):
        text = format_scorecard(smoke_card)
        for run in smoke_card.runs:
            assert run.scenario in text
        assert "Harmonic mean (discounted gain)" in text
        assert "Mean recall@3" in text
        assert "Stages: build" in text


class TestBackendParity:
    """Satellite: the scorecard is identical across execution backends.

    All backends funnel through ``rank_families``'s deterministic sort,
    and the scorers are bitwise reproducible — so the graded scorecard
    must not depend on how the ranking work was scheduled.
    """

    @pytest.mark.parametrize("backend,transfer", [
        ("thread", "shm"),
        ("process", "shm"),
        ("batch", "shm"),
    ])
    def test_backend_matches_inline(self, smoke_card, backend, transfer):
        card = replay_matrix(SMOKE, scorers=DEFAULT_SCORERS,
                             backend=backend, n_workers=2,
                             transfer=transfer, matrix="smoke")
        assert (card.to_json(with_timings=False, with_meta=False)
                == smoke_card.to_json(with_timings=False, with_meta=False))
