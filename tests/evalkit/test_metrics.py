"""Unit tests for ranking metrics (§6.1)."""

import pytest

from repro.evalkit.metrics import (
    FAILURE_SCORE,
    discounted_gain,
    first_cause_rank,
    log_discounted_gain,
    random_ranking_expected_gain,
    success_at_k,
    summarize_gains,
)


RANKING = ["effect_a", "effect_b", "cause_1", "noise", "cause_2"]


class TestFirstCauseRank:
    def test_basic(self):
        assert first_cause_rank(RANKING, {"cause_1", "cause_2"}) == 3

    def test_cutoff_makes_failure(self):
        assert first_cause_rank(RANKING, {"cause_2"}, cutoff=4) is None

    def test_no_cause(self):
        assert first_cause_rank(RANKING, {"zzz"}) is None

    def test_first_position(self):
        assert first_cause_rank(RANKING, {"effect_a"}) == 1


class TestGains:
    def test_discounted_gain_is_reciprocal_rank(self):
        assert discounted_gain(RANKING, {"cause_1"}) == pytest.approx(1 / 3)

    def test_failure_is_none(self):
        assert discounted_gain(RANKING, {"zzz"}) is None

    def test_log_gain(self):
        assert log_discounted_gain(RANKING, {"effect_a"}) == 1.0
        assert log_discounted_gain(RANKING, {"cause_1"}) == \
            pytest.approx(0.5)

    def test_log_gain_gentler_than_zipfian(self):
        zipf = discounted_gain(RANKING, {"cause_1"})
        log = log_discounted_gain(RANKING, {"cause_1"})
        assert log > zipf


class TestSuccessAtK:
    def test_thresholds(self):
        causes = {"cause_1"}
        assert not success_at_k(RANKING, causes, 1)
        assert not success_at_k(RANKING, causes, 2)
        assert success_at_k(RANKING, causes, 3)
        assert success_at_k(RANKING, causes, 20)


class TestSummaries:
    def test_harmonic_mean_with_failures(self):
        stats = summarize_gains([1.0, None])
        # harmonic mean of (1.0, 0.001) = 2 / (1 + 1000)
        assert stats["harmonic_mean"] == pytest.approx(2 / 1001.0)
        assert stats["failures"] == 1

    def test_average_imputes_zero(self):
        stats = summarize_gains([1.0, None])
        assert stats["average"] == 0.5

    def test_no_failures(self):
        stats = summarize_gains([0.5, 0.25])
        assert stats["failures"] == 0
        assert stats["harmonic_mean"] == pytest.approx(1 / 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_gains([])

    def test_failure_score_constant(self):
        assert FAILURE_SCORE == 0.001


class TestRandomBaseline:
    def test_probability_sums(self):
        """Expected gain for 1 cause among n uniformly: sum over ranks."""
        # n=2, 1 cause: E = 0.5*1 + 0.5*0.5 = 0.75
        assert random_ranking_expected_gain(2, 1, cutoff=20) == \
            pytest.approx(0.75)

    def test_large_n_much_worse_than_corrmean(self):
        """The paper's note: random ranking scores far below CorrMean."""
        expected = random_ranking_expected_gain(800, 1)
        assert expected < 0.02

    def test_more_causes_help(self):
        one = random_ranking_expected_gain(100, 1)
        five = random_ranking_expected_gain(100, 5)
        assert five > one

    def test_validation(self):
        with pytest.raises(ValueError):
            random_ranking_expected_gain(0, 1)
