"""Unit tests for the cost-curve measurement (Table 2)."""

import pytest

from repro.evalkit.cost import (
    fit_growth_exponent,
    format_cost_table,
    measure_cost_curve,
    CostSample,
)


class TestMeasureCostCurve:
    def test_samples_structure(self):
        samples = measure_cost_curve("CorrMax", widths=(4, 8),
                                     n_samples=80, repeats=1)
        assert [s.nx for s in samples] == [4, 8]
        assert all(s.seconds > 0 for s in samples)
        assert all(s.scorer == "CorrMax" for s in samples)

    def test_joint_more_expensive_than_univariate(self):
        cheap = measure_cost_curve("CorrMax", widths=(32,),
                                   n_samples=150, repeats=2)[0]
        pricey = measure_cost_curve("L2", widths=(32,),
                                    n_samples=150, repeats=2)[0]
        assert pricey.seconds > cheap.seconds


class TestGrowthExponent:
    def test_linear_data_slope_one(self):
        samples = [CostSample("s", 100, nx, 1, nx * 1e-3)
                   for nx in (8, 16, 32, 64)]
        assert fit_growth_exponent(samples) == pytest.approx(1.0)

    def test_quadratic_data_slope_two(self):
        samples = [CostSample("s", 100, nx, 1, nx * nx * 1e-5)
                   for nx in (8, 16, 32, 64)]
        assert fit_growth_exponent(samples) == pytest.approx(2.0)

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_growth_exponent([CostSample("s", 1, 1, 1, 1.0)])


class TestFormatCostTable:
    def test_rendering(self):
        curves = {"CorrMax": [CostSample("CorrMax", 100, 8, 1, 0.001),
                              CostSample("CorrMax", 100, 16, 1, 0.002)]}
        text = format_cost_table(curves)
        assert "CorrMax" in text
        assert "slope" in text
