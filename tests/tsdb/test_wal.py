"""Write-ahead log framing, batching, and crash recovery.

The crash model: a process dies mid-append, leaving an arbitrary byte
prefix of the final record (or garbage where a record should start).
Reopening the log must recover exactly the records whose frames are
intact and drop the torn tail — never a record in the middle, never
garbage rows.
"""

import os
import struct

import numpy as np
import pytest

from repro.tsdb.model import SeriesFormatError, SeriesId
from repro.tsdb.storage import TimeSeriesStore
from repro.tsdb.wal import (
    MAGIC,
    WriteAheadLog,
    decode_payload,
    encode_record,
)


def _series(i: int) -> SeriesId:
    return SeriesId.make("flow.bytecount",
                         {"src": f"datanode-{i}", "dest": "namenode"})


def _batch(i: int, n: int = 50):
    ts = np.arange(n, dtype=np.int64) + 10 * i
    vals = np.linspace(-1.0, 1.0, n) * (i + 1)
    vals[0] = np.nan
    return ts, vals


class TestRecordCodec:
    def test_round_trip_preserves_series_and_columns(self):
        series = _series(3)
        ts, vals = _batch(3)
        record = encode_record(series, ts, vals)
        length, crc = struct.unpack_from("<II", record, 0)
        assert length == len(record) - 8
        got_series, got_ts, got_vals = decode_payload(record[8:])
        assert got_series == series
        assert np.array_equal(got_ts, ts)
        assert np.array_equal(got_vals, vals, equal_nan=True)

    def test_tagless_series(self):
        series = SeriesId.make("runtime")
        record = encode_record(series, np.asarray([1], dtype=np.int64),
                               np.asarray([2.0]))
        got_series, got_ts, got_vals = decode_payload(record[8:])
        assert got_series == series and got_series.tags == ()

    def test_truncated_payload_raises(self):
        record = encode_record(_series(0), *_batch(0))
        with pytest.raises(SeriesFormatError):
            decode_payload(record[8:-8])


class TestAppendReplay:
    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "ingest.wal"
        with WriteAheadLog(path) as log:
            for i in range(7):
                log.append_array(_series(i), *_batch(i))
        replayed = TimeSeriesStore()
        points = WriteAheadLog(path).replay_into(replayed)
        assert points == 7 * 50
        for i in range(7):
            ts, vals = _batch(i)
            got_ts, got_vals = replayed.arrays(_series(i))
            assert np.array_equal(got_ts, ts)
            assert np.array_equal(got_vals, vals, equal_nan=True)

    def test_reopen_appends_after_existing_records(self, tmp_path):
        path = tmp_path / "ingest.wal"
        with WriteAheadLog(path) as log:
            log.append_array(_series(0), *_batch(0))
        with WriteAheadLog(path) as log:
            log.append_array(_series(0),
                             np.asarray([1000], dtype=np.int64),
                             np.asarray([5.0]))
        store = TimeSeriesStore()
        WriteAheadLog(path).replay_into(store)
        ts, _ = store.arrays(_series(0))
        assert ts.size == 51 and int(ts[-1]) == 1000

    def test_fsync_batching_counts(self, tmp_path):
        log = WriteAheadLog(tmp_path / "w.wal", fsync_every=4)
        for i in range(10):
            log.append_array(_series(0),
                             np.asarray([i], dtype=np.int64),
                             np.asarray([float(i)]))
        assert log.records_written == 10
        assert log.sync_count == 2          # at 4 and 8; 2 still pending
        log.close()
        assert log.sync_count == 3          # close flushes the tail

    def test_fsync_every_must_be_positive(self, tmp_path):
        with pytest.raises(SeriesFormatError):
            WriteAheadLog(tmp_path / "w.wal", fsync_every=0)


class TestCrashRecovery:
    def _write_log(self, path, n=5):
        with WriteAheadLog(path) as log:
            for i in range(n):
                log.append_array(_series(i), *_batch(i))
        return os.path.getsize(path)

    def test_truncated_tail_record_is_dropped(self, tmp_path):
        """Every possible torn-tail length of the final record recovers
        exactly the first n-1 records."""
        path = tmp_path / "crash.wal"
        self._write_log(path, n=3)
        size = os.path.getsize(path)
        record_len = len(encode_record(_series(2), *_batch(2)))
        intact = size - record_len
        # Chop the last record at representative offsets: frame header
        # torn, payload torn at both ends, single byte missing.
        for keep in (0, 4, 8, 9, record_len // 2, record_len - 1):
            torn = tmp_path / f"torn-{keep}.wal"
            torn.write_bytes(path.read_bytes()[:intact + keep])
            store = TimeSeriesStore()
            points = WriteAheadLog(torn).replay_into(store)
            assert points == 2 * 50, f"keep={keep}"
            assert _series(2) not in store
            # Recovery truncated the debris: the reopened file ends on
            # the last intact record boundary.
            assert os.path.getsize(torn) == intact

    def test_corrupt_crc_stops_replay_at_last_good_record(self, tmp_path):
        path = tmp_path / "crash.wal"
        self._write_log(path, n=3)
        data = bytearray(path.read_bytes())
        record_len = len(encode_record(_series(2), *_batch(2)))
        # Flip one payload byte of the *middle* record: it and
        # everything after must be discarded.
        middle_start = len(data) - 2 * record_len
        data[middle_start + 8 + 3] ^= 0xFF
        path.write_bytes(bytes(data))
        store = TimeSeriesStore()
        points = WriteAheadLog(path).replay_into(store)
        assert points == 50
        assert _series(0) in store and _series(1) not in store

    def test_bad_magic_resets_file(self, tmp_path):
        path = tmp_path / "junk.wal"
        path.write_bytes(b"not a wal file at all")
        store = TimeSeriesStore()
        assert WriteAheadLog(path).replay_into(store) == 0
        assert path.read_bytes() == MAGIC

    def test_empty_and_missing_files(self, tmp_path):
        empty = tmp_path / "empty.wal"
        empty.write_bytes(b"")
        assert WriteAheadLog(empty).replay_into(TimeSeriesStore()) == 0
        missing = tmp_path / "missing.wal"
        assert WriteAheadLog(missing).replay_into(TimeSeriesStore()) == 0
        assert missing.read_bytes() == MAGIC

    def test_recovered_log_accepts_new_appends(self, tmp_path):
        path = tmp_path / "crash.wal"
        self._write_log(path, n=2)
        record_len = len(encode_record(_series(1), *_batch(1)))
        data = path.read_bytes()
        path.write_bytes(data[:-record_len // 2])   # tear the tail
        with WriteAheadLog(path) as log:
            log.append_array(_series(9), *_batch(9))
        store = TimeSeriesStore()
        assert WriteAheadLog(path).replay_into(store) == 2 * 50
        assert _series(0) in store and _series(9) in store
        assert _series(1) not in store
