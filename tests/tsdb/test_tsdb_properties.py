"""Property-based tests for the tsdb substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.tsdb import SeriesId, TimeSeriesStore
from repro.tsdb.persist import dumps_store, loads_store
from repro.tsdb.query import Downsampler, align_to_grid

metric_names = st.sampled_from(["cpu", "disk", "runtime", "latency"])
tag_values = st.sampled_from(["h1", "h2", "h3"])
values = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


@st.composite
def stores(draw):
    store = TimeSeriesStore()
    n_series = draw(st.integers(1, 5))
    for i in range(n_series):
        name = draw(metric_names)
        host = draw(tag_values)
        sid = SeriesId.make(name, {"host": host, "idx": str(i)})
        n_points = draw(st.integers(1, 15))
        vals = [draw(values) for _ in range(n_points)]
        store.insert_array(sid, range(n_points), vals)
    return store


class TestStoreProperties:
    @given(stores())
    @settings(max_examples=30, deadline=None)
    def test_persist_round_trip_identity(self, store):
        restored = loads_store(dumps_store(store))
        assert restored.series_ids() == store.series_ids()
        for sid in store.series_ids():
            _, original = store.arrays(sid)
            _, loaded = restored.arrays(sid)
            assert np.allclose(original, loaded, rtol=0, atol=0)

    @given(stores())
    @settings(max_examples=30, deadline=None)
    def test_find_partition_by_name(self, store):
        """Every series is found by exactly its own name filter."""
        total = 0
        for name in store.metric_names():
            total += len(store.find(name=name))
        assert total == len(store)

    @given(stores(), st.integers(0, 10), st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_time_clip_is_subset(self, store, start, width):
        for sid in store.series_ids():
            ts_all, _ = store.arrays(sid)
            ts_clip, _ = store.arrays(sid, start=start, end=start + width)
            assert set(ts_clip.tolist()) <= set(ts_all.tolist())
            assert all(start <= t < start + width
                       for t in ts_clip.tolist())


class TestDownsamplerProperties:
    @given(st.lists(values, min_size=1, max_size=40),
           st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_sum_preserved_by_sum_aggregator(self, vals, interval):
        ts = np.arange(len(vals))
        arr = np.asarray(vals)
        _, out = Downsampler(interval, "sum").apply(ts, arr)
        assert float(out.sum()) == np.float64(arr.sum()) or \
            abs(float(out.sum()) - float(arr.sum())) <= 1e-6 * max(
                1.0, abs(float(arr.sum())))

    @given(st.lists(values, min_size=1, max_size=40),
           st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_minmax_bracket_avg(self, vals, interval):
        ts = np.arange(len(vals))
        arr = np.asarray(vals)
        _, lo = Downsampler(interval, "min").apply(ts, arr)
        _, hi = Downsampler(interval, "max").apply(ts, arr)
        _, mid = Downsampler(interval, "avg").apply(ts, arr)
        assert np.all(lo <= mid + 1e-9)
        assert np.all(mid <= hi + 1e-9)

    @given(st.lists(values, min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_interval_one_is_identity(self, vals):
        ts = np.arange(len(vals))
        arr = np.asarray(vals)
        out_ts, out_vals = Downsampler(1, "avg").apply(ts, arr)
        assert np.array_equal(out_ts, ts)
        assert np.allclose(out_vals, arr)


class TestAlignmentProperties:
    @given(st.lists(values, min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_alignment_uses_only_observed_values(self, vals):
        ts = np.arange(0, 3 * len(vals), 3)
        arr = np.asarray(vals)
        grid = np.arange(3 * len(vals))
        aligned = align_to_grid(ts, arr, grid)
        observed = set(arr.tolist())
        assert set(aligned.tolist()) <= observed

    @given(st.lists(values, min_size=2, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_alignment_exact_at_observations(self, vals):
        ts = np.arange(len(vals))
        arr = np.asarray(vals)
        aligned = align_to_grid(ts, arr, ts)
        assert np.array_equal(aligned, arr)
