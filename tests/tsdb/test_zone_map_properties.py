"""Property tests for zone maps and zone-map-pruned scans.

Two guarantees back the cost-based planner and the predicate-pushdown
scan path:

1. **Zone maps are exact**: after any mix of point appends, bulk
   appends, ``apply`` value rewrites and ``merge``, every sealed
   segment's recorded statistics equal a brute-force recompute over the
   consolidated columns, the segments tile ``[0, len)``, and every
   mutation bumps ``store.version``.
2. **Pruning is invisible**: a zone-map-pruned scan returns a
   conservative superset in unpruned order, so re-applying the exact
   predicate — or running the full SQL WHERE — gives results bitwise
   identical to the unpruned path.
"""

import math

from hypothesis import given, settings, strategies as st
import numpy as np

from repro.sql.catalog import Database
from repro.tsdb.adapter import register_store, tsdb_table
from repro.tsdb.model import _chunk_stats
from repro.tsdb.storage import TimeSeriesStore
from repro.tsdb import SeriesId

metric_names = st.sampled_from(["cpu", "disk", "runtime"])
hosts = st.sampled_from(["h1", "h2", "h3"])
values = st.one_of(
    st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
    st.just(float("nan")),
)


@st.composite
def grown_stores(draw):
    """A store grown through the full mutation surface.

    Several series, each receiving multiple bulk chunks (so scans have
    something to prune), a sprinkling of point appends, optionally an
    ``apply`` rewrite and a ``merge`` from a second store.
    """
    store = TimeSeriesStore()
    n_series = draw(st.integers(1, 4))
    for i in range(n_series):
        sid = SeriesId.make(draw(metric_names),
                            {"host": draw(hosts), "idx": str(i)})
        next_ts = 0
        for _ in range(draw(st.integers(1, 3))):        # several chunks
            n = draw(st.integers(1, 8))
            steps = draw(st.lists(st.integers(0, 5), min_size=n, max_size=n))
            ts = next_ts + np.cumsum(np.asarray(steps, dtype=np.int64))
            vals = [draw(values) for _ in range(n)]
            store.insert_array(sid, ts, vals)
            next_ts = int(ts[-1]) + draw(st.integers(0, 10))
        for _ in range(draw(st.integers(0, 3))):        # point appends
            store.insert(sid, next_ts, draw(values))
            next_ts += draw(st.integers(0, 3))
    if draw(st.booleans()):                             # fault overlay
        target = draw(st.sampled_from(store.series_ids()))
        offset = draw(st.floats(-10, 10, allow_nan=False))
        store.apply(target, lambda ts, vals: vals + offset)
    if draw(st.booleans()):                             # merge
        other = TimeSeriesStore()
        sid = SeriesId.make(draw(metric_names), {"host": draw(hosts)})
        n = draw(st.integers(1, 6))
        other.insert_array(sid, range(n),
                           [draw(values) for _ in range(n)])
        store.merge(other)
    return store


def _recomputed_segments(store, sid):
    """Brute-force zone maps from the consolidated columns."""
    ts, vals = store.arrays(sid)
    return [
        _chunk_stats(seg.start, ts[seg.start:seg.end],
                     vals[seg.start:seg.end])
        for seg in store.chunk_stats(sid)
    ]


class TestZoneMapExactness:
    @given(grown_stores())
    @settings(max_examples=40, deadline=None)
    def test_segments_tile_and_stats_are_exact(self, store):
        for sid in store.series_ids():
            segments = store.chunk_stats(sid)
            ts, _ = store.arrays(sid)
            # Tiling: contiguous [0, len) coverage.
            assert segments[0].start == 0
            assert segments[-1].end == ts.size
            for prev, cur in zip(segments, segments[1:]):
                assert prev.end == cur.start
            # Exactness: incrementally-maintained stats equal recompute.
            assert list(segments) == _recomputed_segments(store, sid)

    @given(grown_stores(), st.integers(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_every_mutation_bumps_version(self, store, n_extra):
        sid = store.series_ids()[0]
        ts, _ = store.arrays(sid)
        next_ts = int(ts[-1]) + 1
        seen = {store.version}

        store.insert(sid, next_ts, 1.0)
        assert store.version not in seen
        seen.add(store.version)

        store.insert_array(sid, range(next_ts + 1, next_ts + 2 + n_extra),
                           np.ones(1 + n_extra))
        assert store.version not in seen
        seen.add(store.version)

        store.apply(sid, lambda t, v: v * 2.0)
        assert store.version not in seen
        seen.add(store.version)

        other = TimeSeriesStore()
        other.insert_array(SeriesId.make("merged"), [0, 1], [1.0, 2.0])
        store.merge(other)
        assert store.version not in seen
        # Zone maps stay exact through the whole sequence.
        assert (list(store.chunk_stats(sid))
                == _recomputed_segments(store, sid))


time_bounds = st.one_of(st.none(), st.integers(-5, 60))
value_bounds = st.one_of(st.none(),
                         st.floats(-1e6, 1e6, allow_nan=False,
                                   allow_infinity=False))


class TestPrunedScanParity:
    @given(grown_stores(), time_bounds, time_bounds)
    @settings(max_examples=40, deadline=None)
    def test_time_only_scan_is_bitwise(self, store, start, end):
        """With no value range, the pruned scan equals the plain clip."""
        for sid in store.series_ids():
            ref_ts, ref_vals = store.arrays(sid, start, end)
            got_ts, got_vals, scanned, pruned = store.scan_arrays(
                sid, start, end)
            assert scanned + pruned == len(store.chunk_stats(sid))
            assert np.array_equal(got_ts, ref_ts)
            assert np.array_equal(got_vals, ref_vals, equal_nan=True)

    @given(grown_stores(), time_bounds, time_bounds,
           value_bounds, value_bounds)
    @settings(max_examples=40, deadline=None)
    def test_value_pruned_scan_refilters_bitwise(self, store, start, end,
                                                 lo, hi):
        """Value pruning keeps whole chunks: the result is a superset of
        the exact matches, in unpruned order, so re-applying the exact
        predicate recovers the unpruned answer bit for bit."""
        for sid in store.series_ids():
            ref_ts, ref_vals = store.arrays(sid, start, end)
            got_ts, got_vals, _, _ = store.scan_arrays(
                sid, start, end, lo, hi)

            def exact(ts, vals):
                mask = np.ones(ts.size, dtype=bool)
                if lo is not None:
                    mask &= vals >= lo          # NaN compares False
                if hi is not None:
                    mask &= vals <= hi
                return ts[mask], vals[mask]

            want_ts, want_vals = exact(ref_ts, ref_vals)
            have_ts, have_vals = exact(got_ts, got_vals)
            assert np.array_equal(have_ts, want_ts)
            # equal_nan: with no value bound, NaN rows survive unfiltered
            # on both sides and must pair up.
            assert np.array_equal(have_vals, want_vals, equal_nan=True)


WHERE_CLAUSES = [
    "",
    "WHERE timestamp >= 5",
    "WHERE timestamp >= 3 AND timestamp < 20",
    "WHERE metric_name = 'cpu'",
    "WHERE metric_name = 'disk' AND timestamp < 15",
    "WHERE tag['host'] = 'h1'",
    "WHERE metric_name = 'cpu' AND tag['host'] = 'h2' AND timestamp >= 4",
    "WHERE value > 0",
    "WHERE metric_name = 'runtime' AND value <= 100 AND timestamp >= 2",
    "WHERE metric_name = 'nope'",
]
QUERIES = [
    "SELECT * FROM tsdb {where}",
    "SELECT timestamp, value FROM tsdb {where} LIMIT 7",
    ("SELECT metric_name, COUNT(*) AS n, MIN(value) AS lo "
     "FROM tsdb {where} GROUP BY metric_name"),
]


def _rows_equal(a, b):
    if len(a) != len(b):
        return False
    for ra, rb in zip(a, b):
        for ca, cb in zip(ra, rb):
            both_nan = (isinstance(ca, float) and isinstance(cb, float)
                        and math.isnan(ca) and math.isnan(cb))
            if not both_nan and ca != cb:
                return False
    return True


class TestPrunedQueryParity:
    @given(grown_stores(), st.sampled_from(WHERE_CLAUSES),
           st.sampled_from(QUERIES))
    @settings(max_examples=60, deadline=None)
    def test_sql_results_match_unpruned_database(self, store, where, query):
        pruned = Database()
        register_store(pruned, store)
        unpruned = Database()
        unpruned.register_versioned_provider(
            "tsdb", lambda: tsdb_table(store), lambda: store.version)

        sql = query.format(where=where)
        got = pruned.sql(sql)
        want = unpruned.sql(sql)
        assert got.columns == want.columns
        assert _rows_equal(got.rows, want.rows)
