"""Sharded concurrent ingest tier: routing, snapshots, thread stress.

The contract under test: writers touching different series interleave
freely, yet any snapshot is a plain single-threaded store whose bytes
never change — and a snapshot taken at version ``v`` is bitwise
identical to a quiesced store that stopped at ``v``-equivalent
contents.
"""

import threading
import zlib

import numpy as np
import pytest

from repro.sql import Database
from repro.tsdb import (
    SeriesId,
    ShardedTimeSeriesStore,
    TimeSeriesStore,
    register_store,
)
from repro.tsdb.model import SeriesFormatError
from repro.tsdb.sharded import shard_index


def _series(i: int) -> SeriesId:
    return SeriesId.make("cpu.util", {"host": f"host-{i:02d}",
                                      "dc": "east" if i % 2 else "west"})


def _workload(n_series=12, n_batches=6, batch=200, seed=7):
    """Per-series batch lists, identical across runs."""
    rng = np.random.default_rng(seed)
    out = {}
    for i in range(n_series):
        batches = []
        t0 = 0
        for _ in range(n_batches):
            ts = t0 + np.sort(rng.integers(0, 50, size=batch)).astype(np.int64)
            t0 = int(ts[-1]) + 1
            vals = rng.normal(size=batch)
            vals[rng.random(batch) < 0.05] = np.nan
            batches.append((ts, vals))
        out[_series(i)] = batches
    return out


def _sequential_store(workload) -> TimeSeriesStore:
    store = TimeSeriesStore()
    for series, batches in workload.items():
        for ts, vals in batches:
            store.insert_array(series, ts, vals)
    return store


def _assert_same_contents(a, b):
    assert a.series_ids() == b.series_ids()
    for series in a.series_ids():
        a_ts, a_vals = a.arrays(series)
        b_ts, b_vals = b.arrays(series)
        assert np.array_equal(a_ts, b_ts)
        assert np.array_equal(a_vals.view(np.int64), b_vals.view(np.int64))
        assert a.chunk_stats(series) == b.chunk_stats(series)


class TestRouting:
    def test_routing_matches_documented_formula(self):
        store = ShardedTimeSeriesStore(n_shards=8)
        for i in range(40):
            series = _series(i)
            expected = zlib.crc32(str(series).encode("utf-8")) % 8
            assert store.shard_of(series) == expected
            assert shard_index(series, 8) == expected

    def test_routing_is_tag_order_independent(self):
        a = SeriesId.make("m", {"x": "1", "y": "2"})
        b = SeriesId.make("m", {"y": "2", "x": "1"})
        assert shard_index(a, 16) == shard_index(b, 16)

    def test_every_point_lands_on_its_shard(self):
        workload = _workload(n_series=16)
        store = ShardedTimeSeriesStore(n_shards=4)
        for series, batches in workload.items():
            for ts, vals in batches:
                store.insert_array(series, ts, vals)
        sizes = store.shard_sizes()
        assert sum(sizes) == store.num_points()
        for series in workload:
            idx = store.shard_of(series)
            assert series in store._shards[idx]._data

    def test_invalid_shard_count(self):
        with pytest.raises(SeriesFormatError):
            ShardedTimeSeriesStore(n_shards=0)


class TestDropInParity:
    """Single-threaded use: the sharded store answers every read
    identically to a plain store fed the same batches."""

    def test_reads_match_sequential_store(self):
        workload = _workload()
        plain = _sequential_store(workload)
        sharded = ShardedTimeSeriesStore(n_shards=4)
        for series, batches in workload.items():
            for ts, vals in batches:
                sharded.insert_array(series, ts, vals)
        _assert_same_contents(sharded, plain)
        assert sharded.num_points() == plain.num_points()
        assert sharded.metric_names() == plain.metric_names()
        assert sharded.tag_keys() == plain.tag_keys()
        assert sharded.tag_values("dc") == plain.tag_values("dc")
        assert sharded.time_range() == plain.time_range()
        assert sharded.value_range() == plain.value_range()
        assert sharded.find(name="cpu.util") == plain.find(name="cpu.util")
        assert (sharded.find_exact(tags={"dc": "east"})
                == plain.find_exact(tags={"dc": "east"}))
        s = _series(0)
        got = sharded.scan_arrays(s, start=10, end=40)
        want = plain.scan_arrays(s, start=10, end=40)
        assert np.array_equal(got[0], want[0])
        assert np.array_equal(got[1], want[1], equal_nan=True)

    def test_version_counts_mutations(self):
        store = ShardedTimeSeriesStore(n_shards=2)
        assert store.version == 0
        store.insert(_series(0), 1, 1.0)
        store.insert_array(_series(1), [2, 3], [1.0, 2.0])
        assert store.version == 2
        store.apply(_series(1), lambda ts, vals: vals + 1.0)
        assert store.version == 3

    def test_apply_matches_plain_store(self):
        sharded = ShardedTimeSeriesStore(n_shards=2)
        plain = TimeSeriesStore()
        for target in (sharded, plain):
            target.insert_array(_series(0), [1, 2, 3], [1.0, 2.0, 3.0])
            target.apply(_series(0), lambda ts, vals: vals * 2.0)
        _assert_same_contents(sharded, plain)


class TestSnapshots:
    def test_snapshot_cached_per_version(self):
        store = ShardedTimeSeriesStore(n_shards=2)
        store.insert_array(_series(0), [1, 2], [1.0, 2.0])
        snap = store.snapshot()
        assert store.snapshot() is snap          # no writer: same object
        store.insert_array(_series(1), [1], [9.0])
        snap2 = store.snapshot()
        assert snap2 is not snap
        assert snap2.version == store.version

    def test_snapshot_is_bitwise_stable_while_source_mutates(self):
        store = ShardedTimeSeriesStore(n_shards=2)
        store.insert_array(_series(0), [1, 2], [1.0, 2.0])
        snap = store.snapshot()
        before_ts, before_vals = snap.arrays(_series(0))
        frozen = (before_ts.copy(), before_vals.copy())
        store.insert_array(_series(0), [3, 4], [5.0, 6.0])
        store.apply(_series(0), lambda ts, vals: vals * 100.0)
        after_ts, after_vals = snap.arrays(_series(0))
        assert np.array_equal(after_ts, frozen[0])
        assert np.array_equal(after_vals.view(np.int64),
                              frozen[1].view(np.int64))
        assert len(snap) == 1 and _series(1) not in snap


class TestThreadedStress:
    N_WRITERS = 4

    def _run_threaded(self, workload, readers=0, n_shards=8):
        """Ingest with N writer threads (each owns a series subset so
        per-series order is preserved); optional reader threads take
        snapshots and record (snapshot, version, result) mid-ingest."""
        store = ShardedTimeSeriesStore(n_shards=n_shards)
        series_list = list(workload)
        errors = []
        observations = []
        done = threading.Event()

        def writer(k):
            try:
                for series in series_list[k::self.N_WRITERS]:
                    for ts, vals in workload[series]:
                        store.insert_array(series, ts, vals)
            except Exception as exc:       # pragma: no cover
                errors.append(exc)

        def reader():
            try:
                while not done.is_set():
                    snap = store.snapshot()
                    observations.append(
                        (snap, snap.version, snap.num_points(),
                         {s: tuple(map(np.ndarray.tobytes,
                                       snap.arrays(s)))
                          for s in snap.series_ids()}))
            except Exception as exc:       # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(k,))
                   for k in range(self.N_WRITERS)]
        threads += [threading.Thread(target=reader) for _ in range(readers)]
        for t in threads:
            t.start()
        for t in threads[:self.N_WRITERS]:
            t.join()
        done.set()
        for t in threads[self.N_WRITERS:]:
            t.join()
        assert not errors, errors
        return store, observations

    def test_concurrent_ingest_equals_sequential(self):
        workload = _workload(n_series=16, n_batches=8)
        store, _ = self._run_threaded(workload)
        _assert_same_contents(store, _sequential_store(workload))
        assert store.version == 16 * 8

    def test_mid_ingest_snapshots_stay_bitwise_stable(self):
        """Every snapshot observed mid-ingest must, after quiesce, still
        answer byte-for-byte what it answered when captured."""
        workload = _workload(n_series=12, n_batches=6)
        store, observations = self._run_threaded(workload, readers=2)
        assert observations, "readers captured no snapshots"
        for snap, version, points, columns in observations:
            assert snap.version == version
            assert snap.num_points() == points
            for series, (ts_bytes, val_bytes) in columns.items():
                ts, vals = snap.arrays(series)
                assert ts.tobytes() == ts_bytes
                assert vals.tobytes() == val_bytes
        # Snapshots at the final version equal the quiesced store.
        final = store.snapshot()
        for snap, version, _, _ in observations:
            if version == store.version:
                _assert_same_contents(snap, final)

    def test_equal_versions_imply_identical_bytes(self):
        """Snapshots captured at the same version — possibly by
        different reader threads — must be bitwise identical."""
        workload = _workload(n_series=10, n_batches=5)
        _, observations = self._run_threaded(workload, readers=3)
        by_version = {}
        for _, version, points, columns in observations:
            if version in by_version:
                prev_points, prev_columns = by_version[version]
                assert points == prev_points
                assert columns == prev_columns
            else:
                by_version[version] = (points, columns)


class TestSqlOverShardedStore:
    QUERY = ("SELECT metric_name, COUNT(*) AS n, MIN(value) AS lo "
             "FROM tsdb WHERE timestamp BETWEEN 20 AND 180 "
             "AND tag['dc'] = 'east' GROUP BY metric_name")

    def test_sql_results_match_plain_store(self):
        workload = _workload()
        plain = _sequential_store(workload)
        sharded = ShardedTimeSeriesStore(n_shards=4)
        for series, batches in workload.items():
            for ts, vals in batches:
                sharded.insert_array(series, ts, vals)
        db_plain, db_sharded = Database(), Database()
        register_store(db_plain, plain)
        register_store(db_sharded, sharded)
        assert (db_sharded.sql(self.QUERY).rows
                == db_plain.sql(self.QUERY).rows)

    def test_sql_during_ingest_matches_quiesced_run_at_same_version(self):
        """The acceptance clause: a query answered mid-ingest from a
        version-``v`` snapshot is identical to re-running it against
        that same snapshot after every writer has quiesced — the
        snapshot *is* the store at ``v``, and its answers never move."""
        workload = _workload(n_series=12, n_batches=6)
        store = ShardedTimeSeriesStore(n_shards=4)
        live_db = Database()
        register_store(live_db, store)
        captured = []
        errors = []
        done = threading.Event()

        def writer(k):
            try:
                series_list = list(workload)
                for series in series_list[k::2]:
                    for ts, vals in workload[series]:
                        store.insert_array(series, ts, vals)
            except Exception as exc:       # pragma: no cover
                errors.append(exc)

        def reader():
            try:
                while not done.is_set():
                    snap = store.snapshot()
                    snap_db = Database()
                    register_store(snap_db, snap)
                    captured.append((snap, snap.version,
                                     snap_db.sql(self.QUERY).rows))
                    # The live database must also answer mid-ingest
                    # (its scan runs over one consistent snapshot).
                    live_db.sql(self.QUERY)
            except Exception as exc:       # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(k,))
                   for k in range(2)]
        threads.append(threading.Thread(target=reader))
        for t in threads:
            t.start()
        for t in threads[:2]:
            t.join()
        done.set()
        threads[2].join()
        assert not errors, errors
        assert captured, "reader never queried mid-ingest"
        for snap, version, rows in captured:
            assert snap.version == version   # snapshots never move
            quiesced = Database()
            register_store(quiesced, snap)
            assert quiesced.sql(self.QUERY).rows == rows
        # And the final version's mid-ingest answer equals the fully
        # quiesced live answer.
        final_rows = live_db.sql(self.QUERY).rows
        for snap, version, rows in captured:
            if version == store.version:
                assert rows == final_rows


class TestWalIntegration:
    def test_open_replays_and_continues(self, tmp_path):
        path = tmp_path / "store.wal"
        workload = _workload(n_series=6, n_batches=3)
        with ShardedTimeSeriesStore.open(path, n_shards=4) as store:
            for series, batches in workload.items():
                for ts, vals in batches:
                    store.insert_array(series, ts, vals)
        # Reopen into a different shard count: routing changes, data
        # must not.
        with ShardedTimeSeriesStore.open(path, n_shards=2) as reopened:
            _assert_same_contents(reopened, _sequential_store(workload))
            assert reopened.wal.records_written == 0  # replay, not re-log
            reopened.insert_array(
                SeriesId.make("extra"), [1, 2], [3.0, 4.0])
        with ShardedTimeSeriesStore.open(path) as again:
            assert SeriesId.make("extra") in again
            assert again.num_points() == (
                _sequential_store(workload).num_points() + 2)

    def test_torn_tail_recovers_prefix(self, tmp_path):
        path = tmp_path / "store.wal"
        with ShardedTimeSeriesStore.open(path) as store:
            store.insert_array(_series(0), [1, 2], [1.0, 2.0])
            store.insert_array(_series(1), [1, 2], [3.0, 4.0])
        data = path.read_bytes()
        path.write_bytes(data[:-7])          # tear the last record
        with ShardedTimeSeriesStore.open(path) as recovered:
            assert _series(0) in recovered
            assert _series(1) not in recovered

    def test_concurrent_writers_produce_replayable_log(self, tmp_path):
        path = tmp_path / "store.wal"
        workload = _workload(n_series=8, n_batches=4)
        store = ShardedTimeSeriesStore.open(path, n_shards=4)
        series_list = list(workload)
        threads = [
            threading.Thread(target=lambda k=k: [
                store.insert_array(s, ts, vals)
                for s in series_list[k::4]
                for ts, vals in workload[s]])
            for k in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        store.close()
        with ShardedTimeSeriesStore.open(path) as replayed:
            _assert_same_contents(replayed, _sequential_store(workload))
