"""Unit tests for the line-protocol ingest."""

import pytest

from repro.tsdb.ingest import load_lines, parse_line
from repro.tsdb.model import SeriesFormatError
from repro.tsdb.storage import TimeSeriesStore


class TestParseLine:
    def test_paper_example(self):
        line = ("0 flow{src=datanode-1,dest=datanode-2,srcport=100,"
                "destport=200,protocol=TCP} bytecount=1000 packetcount=10 "
                "retransmits=1")
        points = parse_line(line)
        assert len(points) == 3
        names = {p.series.name for p in points}
        assert names == {"flow.bytecount", "flow.packetcount",
                         "flow.retransmits"}
        assert all(p.timestamp == 0 for p in points)
        assert all(p.series.tag("src") == "datanode-1" for p in points)

    def test_blank_and_comment_lines(self):
        assert parse_line("") == []
        assert parse_line("   ") == []
        assert parse_line("# comment") == []

    def test_no_tags(self):
        points = parse_line("5 cpu usage=42.5")
        assert points[0].series.name == "cpu.usage"
        assert points[0].value == 42.5

    def test_bad_timestamp(self):
        with pytest.raises(SeriesFormatError):
            parse_line("abc cpu usage=1")

    def test_missing_measurement(self):
        with pytest.raises(SeriesFormatError):
            parse_line("5 cpu")

    def test_non_numeric_value(self):
        with pytest.raises(SeriesFormatError):
            parse_line("5 cpu usage=high")

    def test_measurement_without_equals(self):
        with pytest.raises(SeriesFormatError):
            parse_line("5 cpu usage")


class TestLoadLines:
    def test_bulk_load(self):
        store = TimeSeriesStore()
        lines = [
            "0 cpu{host=h1} usage=10",
            "1 cpu{host=h1} usage=12",
            "# skip me",
            "0 cpu{host=h2} usage=20 temp=50",
        ]
        count = load_lines(store, lines)
        assert count == 4
        assert store.num_points() == 4
        assert set(store.metric_names()) == {"cpu.usage", "cpu.temp"}
