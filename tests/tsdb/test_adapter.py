"""Unit tests for the tsdb -> SQL table adapter."""

from repro.sql import Database
from repro.tsdb import SeriesId, TimeSeriesStore, tsdb_table
from repro.tsdb.adapter import TSDB_COLUMNS, register_store


def _store():
    store = TimeSeriesStore()
    store.insert_array(SeriesId.make("runtime", {"pipeline_name": "p1"}),
                       [0, 1, 2], [10.0, 11.0, 12.0])
    store.insert_array(SeriesId.make("input_rate", {"type": "e1"}),
                       [0, 1, 2], [100.0, 110.0, 90.0])
    return store


class TestTsdbTable:
    def test_schema(self):
        table = tsdb_table(_store())
        assert table.columns == TSDB_COLUMNS

    def test_row_count(self):
        assert len(tsdb_table(_store())) == 6

    def test_time_clipping(self):
        table = tsdb_table(_store(), start=1, end=2)
        assert len(table) == 2
        assert all(row[0] == 1 for row in table.rows)

    def test_tag_map_cell(self):
        table = tsdb_table(_store())
        runtime_rows = [r for r in table.rows if r[1] == "runtime"]
        assert runtime_rows[0][2] == {"pipeline_name": "p1"}

    def test_rows_sorted_by_time_then_name(self):
        table = tsdb_table(_store())
        keys = [(r[0], r[1]) for r in table.rows]
        assert keys == sorted(keys)


class TestRegisterStore:
    def test_lazy_registration_queryable(self):
        db = Database()
        register_store(db, _store())
        result = db.sql(
            "SELECT metric_name, COUNT(*) c FROM tsdb "
            "GROUP BY metric_name ORDER BY metric_name"
        )
        assert result.rows == [("input_rate", 3), ("runtime", 3)]

    def test_tag_subscript_in_sql(self):
        db = Database()
        register_store(db, _store())
        result = db.sql(
            "SELECT tag['pipeline_name'] p, AVG(value) v FROM tsdb "
            "WHERE metric_name = 'runtime' GROUP BY tag['pipeline_name']"
        )
        assert result.rows == [("p1", 11.0)]
