"""Parity of the segmented ragged-downsample fast paths.

Gappy (irregular) series produce unequal bucket sizes, which used to
fall back to one Python-level aggregator call per bucket for every
aggregate.  MIN/MAX reduce all buckets with one ``reduceat`` call and
stay bitwise identical to the reference loop (COUNT was already derived
from bucket sizes).  SUM/AVG also reduce with one ``np.add.reduceat``,
but that accumulates each bucket left-to-right while the reference
loop's ``np.sum`` is pairwise, so those two are pinned to a documented
1e-9 relative tolerance instead.  The order statistics (median/p95/p99)
go through sorted-segment indexing — one ``lexsort`` + index gathers
replicating numpy's quantile arithmetic — and must stay *bitwise*
identical to the per-bucket ``np.median``/``np.percentile`` loop, NaN,
``±inf`` and ``-0.0`` included.
"""

from hypothesis import given, settings, strategies as st
import numpy as np

from repro.tsdb.query import Downsampler
from repro.tsdb.reference import naive_downsample


def _bitwise_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Bit-level equality: distinguishes -0.0 from 0.0, equates NaNs
    of the same payload (both sides produce the same quiet NaN)."""
    return np.array_equal(np.asarray(a, dtype=np.float64).view(np.int64),
                          np.asarray(b, dtype=np.float64).view(np.int64))


def _apply_both(interval, agg, ts, vals):
    fast_ts, fast_vals = Downsampler(interval, agg).apply(ts, vals)
    ref_ts, ref_vals = naive_downsample(interval, agg, ts, vals)
    assert np.array_equal(fast_ts, ref_ts)
    assert np.array_equal(fast_vals, ref_vals), (
        f"{agg} mismatch: {fast_vals} vs {ref_vals}")
    return fast_ts, fast_vals


def _apply_both_close(interval, agg, ts, vals):
    """Sequential-vs-pairwise summation parity: documented tolerance."""
    fast_ts, fast_vals = Downsampler(interval, agg).apply(ts, vals)
    ref_ts, ref_vals = naive_downsample(interval, agg, ts, vals)
    assert np.array_equal(fast_ts, ref_ts)
    assert np.allclose(fast_vals, ref_vals, rtol=1e-9, atol=0.0), (
        f"{agg} mismatch: {fast_vals} vs {ref_vals}")
    return fast_ts, fast_vals


@st.composite
def gappy_series(draw):
    n = draw(st.integers(1, 60))
    ts = np.asarray(sorted(draw(st.sets(
        st.integers(0, 300), min_size=n, max_size=n))), dtype=np.int64)
    vals = np.asarray(draw(st.lists(
        st.floats(-1e6, 1e6, allow_nan=False),
        min_size=ts.size, max_size=ts.size)), dtype=np.float64)
    return ts, vals


class TestRaggedSegmentedReduction:
    def test_min_max_on_explicitly_gappy_buckets(self):
        # Buckets of sizes 3, 1, 2 under interval=10: ragged by design.
        ts = np.asarray([0, 3, 7, 25, 41, 44], dtype=np.int64)
        vals = np.asarray([5.0, -2.0, 3.5, 9.0, -1.0, -7.25])
        out_ts, mins = _apply_both(10, "min", ts, vals)
        assert out_ts.tolist() == [0, 20, 40]
        assert mins.tolist() == [-2.0, 9.0, -7.25]
        _, maxes = _apply_both(10, "max", ts, vals)
        assert maxes.tolist() == [5.0, 9.0, -1.0]

    def test_count_on_gappy_buckets(self):
        ts = np.asarray([0, 3, 7, 25, 41, 44], dtype=np.int64)
        vals = np.zeros(6)
        _, counts = _apply_both(10, "count", ts, vals)
        assert counts.tolist() == [3.0, 1.0, 2.0]

    def test_single_point_buckets(self):
        ts = np.asarray([0, 100, 200], dtype=np.int64)
        vals = np.asarray([1.0, 2.0, 3.0])
        for agg in ("min", "max", "count"):
            _apply_both(7, agg, ts, vals)

    @given(gappy_series(), st.integers(1, 40),
           st.sampled_from(["min", "max", "count"]))
    @settings(max_examples=120, deadline=None)
    def test_segmented_aggregates_bitwise(self, series, interval, agg):
        ts, vals = series
        _apply_both(interval, agg, ts, vals)

    @given(gappy_series(), st.integers(1, 40),
           st.sampled_from(["median", "p95", "p99"]))
    @settings(max_examples=90, deadline=None)
    def test_order_statistics_bitwise(self, series, interval, agg):
        ts, vals = series
        _apply_both(interval, agg, ts, vals)

    @given(gappy_series(), st.integers(1, 40),
           st.sampled_from(["sum", "avg"]))
    @settings(max_examples=60, deadline=None)
    def test_segmented_sums_within_tolerance(self, series, interval, agg):
        ts, vals = series
        _apply_both_close(interval, agg, ts, vals)

    def test_sum_avg_on_explicitly_gappy_buckets(self):
        ts = np.asarray([0, 3, 7, 25, 41, 44], dtype=np.int64)
        vals = np.asarray([5.0, -2.0, 3.5, 9.0, -1.0, -7.25])
        out_ts, sums = _apply_both_close(10, "sum", ts, vals)
        assert out_ts.tolist() == [0, 20, 40]
        assert sums.tolist() == [6.5, 9.0, -8.25]
        _, avgs = _apply_both_close(10, "avg", ts, vals)
        assert avgs.tolist() == [6.5 / 3, 9.0, -4.125]

    def test_equal_width_sum_avg_stays_bitwise(self, rng):
        """Dense regular grids must keep the reshape path's bitwise
        guarantee — the reduceat tolerance applies to ragged buckets
        only."""
        ts = np.arange(120, dtype=np.int64)
        vals = rng.standard_normal(120) * 1e6
        for agg in ("sum", "avg"):
            _apply_both(10, agg, ts, vals)


class TestSegmentedOrderStatistics:
    """The sorted-segment median/percentile kernel vs the loop, bitwise,
    under the full float64 bestiary (NaN, ±inf, -0.0, near-overflow)."""

    def _compare(self, interval, agg, ts, vals):
        fast_ts, fast_vals = Downsampler(interval, agg).apply(ts, vals)
        with np.errstate(invalid="ignore", over="ignore"):
            ref_ts, ref_vals = naive_downsample(interval, agg, ts, vals)
        assert np.array_equal(fast_ts, ref_ts)
        assert _bitwise_equal(fast_vals, ref_vals), (
            f"{agg}@{interval} mismatch: {fast_vals} vs {ref_vals}")

    def test_explicit_ragged_median(self):
        # Buckets of sizes 3 (odd: middle element), 1, 2 (even: mean of
        # middles) under interval=10.
        ts = np.asarray([0, 3, 7, 25, 41, 44], dtype=np.int64)
        vals = np.asarray([5.0, -2.0, 3.5, 9.0, -1.0, -7.25])
        out_ts, medians = Downsampler(10, "median").apply(ts, vals)
        assert out_ts.tolist() == [0, 20, 40]
        assert medians.tolist() == [3.5, 9.0, -4.125]
        self._compare(10, "median", ts, vals)

    def test_nan_buckets_yield_nan(self):
        ts = np.asarray([0, 1, 2, 25, 41, 44], dtype=np.int64)
        vals = np.asarray([5.0, np.nan, 3.5, 9.0, np.nan, np.nan])
        for agg in ("median", "p95", "p99"):
            _, out = Downsampler(10, agg).apply(ts, vals)
            assert np.isnan(out[0]) and not np.isnan(out[1])
            assert np.isnan(out[2])
            self._compare(10, agg, ts, vals)

    def test_negative_zero_median_matches_numpy_sign(self):
        # np.median's mean over the middle slice folds in the additive
        # identity, turning a -0.0 middle into +0.0; the vectorized
        # kernel must reproduce that sign exactly.
        ts = np.asarray([0, 1, 2], dtype=np.int64)
        vals = np.asarray([-1.0, -0.0, 5.0])
        _, out = Downsampler(10, "median").apply(ts, vals)
        assert _bitwise_equal(out, np.asarray([np.median(vals)]))
        assert not np.signbit(out[0])

    def test_infinity_edge_cases(self):
        ts = np.asarray([0, 1, 12, 13, 14], dtype=np.int64)
        vals = np.asarray([np.inf, np.inf, -np.inf, 2.0, np.inf])
        for agg in ("median", "p95", "p99"):
            self._compare(10, agg, ts, vals)

    def test_single_point_buckets_are_exact(self):
        ts = np.asarray([0, 100, 200], dtype=np.int64)
        vals = np.asarray([-0.0, np.inf, 3.25])
        for agg in ("median", "p95", "p99"):
            self._compare(7, agg, ts, vals)

    @given(gappy_series(), st.integers(1, 40),
           st.sampled_from(["median", "p95", "p99"]),
           st.data())
    @settings(max_examples=90, deadline=None)
    def test_property_bitwise_with_edge_values(self, series, interval,
                                               agg, data):
        ts, vals = series
        vals = vals.copy()
        # Overwrite a random subset with adversarial floats.
        specials = [np.nan, np.inf, -np.inf, -0.0, 1e308, -1e308]
        for i in range(vals.size):
            if data.draw(st.booleans(), label=f"special@{i}"):
                vals[i] = data.draw(st.sampled_from(specials),
                                    label=f"value@{i}")
        self._compare(interval, agg, ts, vals)
