"""Parity of the segmented ragged-downsample fast paths.

Gappy (irregular) series produce unequal bucket sizes, which used to
fall back to one Python-level aggregator call per bucket for every
aggregate.  MIN/MAX reduce all buckets with one ``reduceat`` call and
stay bitwise identical to the reference loop (COUNT was already derived
from bucket sizes).  SUM/AVG also reduce with one ``np.add.reduceat``,
but that accumulates each bucket left-to-right while the reference
loop's ``np.sum`` is pairwise, so those two are pinned to a documented
1e-9 relative tolerance instead; the order statistics (median/p95/p99)
keep the per-bucket loop and stay bitwise.
"""

from hypothesis import given, settings, strategies as st
import numpy as np

from repro.tsdb.query import Downsampler
from repro.tsdb.reference import naive_downsample


def _apply_both(interval, agg, ts, vals):
    fast_ts, fast_vals = Downsampler(interval, agg).apply(ts, vals)
    ref_ts, ref_vals = naive_downsample(interval, agg, ts, vals)
    assert np.array_equal(fast_ts, ref_ts)
    assert np.array_equal(fast_vals, ref_vals), (
        f"{agg} mismatch: {fast_vals} vs {ref_vals}")
    return fast_ts, fast_vals


def _apply_both_close(interval, agg, ts, vals):
    """Sequential-vs-pairwise summation parity: documented tolerance."""
    fast_ts, fast_vals = Downsampler(interval, agg).apply(ts, vals)
    ref_ts, ref_vals = naive_downsample(interval, agg, ts, vals)
    assert np.array_equal(fast_ts, ref_ts)
    assert np.allclose(fast_vals, ref_vals, rtol=1e-9, atol=0.0), (
        f"{agg} mismatch: {fast_vals} vs {ref_vals}")
    return fast_ts, fast_vals


@st.composite
def gappy_series(draw):
    n = draw(st.integers(1, 60))
    ts = np.asarray(sorted(draw(st.sets(
        st.integers(0, 300), min_size=n, max_size=n))), dtype=np.int64)
    vals = np.asarray(draw(st.lists(
        st.floats(-1e6, 1e6, allow_nan=False),
        min_size=ts.size, max_size=ts.size)), dtype=np.float64)
    return ts, vals


class TestRaggedSegmentedReduction:
    def test_min_max_on_explicitly_gappy_buckets(self):
        # Buckets of sizes 3, 1, 2 under interval=10: ragged by design.
        ts = np.asarray([0, 3, 7, 25, 41, 44], dtype=np.int64)
        vals = np.asarray([5.0, -2.0, 3.5, 9.0, -1.0, -7.25])
        out_ts, mins = _apply_both(10, "min", ts, vals)
        assert out_ts.tolist() == [0, 20, 40]
        assert mins.tolist() == [-2.0, 9.0, -7.25]
        _, maxes = _apply_both(10, "max", ts, vals)
        assert maxes.tolist() == [5.0, 9.0, -1.0]

    def test_count_on_gappy_buckets(self):
        ts = np.asarray([0, 3, 7, 25, 41, 44], dtype=np.int64)
        vals = np.zeros(6)
        _, counts = _apply_both(10, "count", ts, vals)
        assert counts.tolist() == [3.0, 1.0, 2.0]

    def test_single_point_buckets(self):
        ts = np.asarray([0, 100, 200], dtype=np.int64)
        vals = np.asarray([1.0, 2.0, 3.0])
        for agg in ("min", "max", "count"):
            _apply_both(7, agg, ts, vals)

    @given(gappy_series(), st.integers(1, 40),
           st.sampled_from(["min", "max", "count"]))
    @settings(max_examples=120, deadline=None)
    def test_segmented_aggregates_bitwise(self, series, interval, agg):
        ts, vals = series
        _apply_both(interval, agg, ts, vals)

    @given(gappy_series(), st.integers(1, 40),
           st.sampled_from(["median", "p95"]))
    @settings(max_examples=60, deadline=None)
    def test_loop_fallback_aggregates_bitwise(self, series, interval, agg):
        ts, vals = series
        _apply_both(interval, agg, ts, vals)

    @given(gappy_series(), st.integers(1, 40),
           st.sampled_from(["sum", "avg"]))
    @settings(max_examples=60, deadline=None)
    def test_segmented_sums_within_tolerance(self, series, interval, agg):
        ts, vals = series
        _apply_both_close(interval, agg, ts, vals)

    def test_sum_avg_on_explicitly_gappy_buckets(self):
        ts = np.asarray([0, 3, 7, 25, 41, 44], dtype=np.int64)
        vals = np.asarray([5.0, -2.0, 3.5, 9.0, -1.0, -7.25])
        out_ts, sums = _apply_both_close(10, "sum", ts, vals)
        assert out_ts.tolist() == [0, 20, 40]
        assert sums.tolist() == [6.5, 9.0, -8.25]
        _, avgs = _apply_both_close(10, "avg", ts, vals)
        assert avgs.tolist() == [6.5 / 3, 9.0, -4.125]

    def test_equal_width_sum_avg_stays_bitwise(self, rng):
        """Dense regular grids must keep the reshape path's bitwise
        guarantee — the reduceat tolerance applies to ragged buckets
        only."""
        ts = np.arange(120, dtype=np.int64)
        vals = rng.standard_normal(120) * 1e6
        for agg in ("sum", "avg"):
            _apply_both(10, agg, ts, vals)
