"""Checkpointing: snapshot + WAL truncate, and snapshot-based recovery."""

import threading

import numpy as np

from repro.tsdb.model import SeriesId
from repro.tsdb.sharded import ShardedTimeSeriesStore
from repro.tsdb.wal import MAGIC, WriteAheadLog


def fill(store, n_series=6, n=64, offset=0):
    for i in range(n_series):
        ts = np.arange(offset, offset + n, dtype=np.int64)
        store.insert_array(SeriesId.make(f"metric_{i}", {"host": f"h{i}"}),
                           ts, np.sin(ts / 7.0) + i)
    return store


def contents(store):
    """Bitwise-comparable dump: series -> (timestamp bytes, value bytes)."""
    return {str(series): (ts.tobytes(), vals.tobytes())
            for series, ts, vals in store.snapshot().iter_arrays()}


def test_checkpoint_writes_snapshot_and_truncates_wal(tmp_path):
    wal_path = tmp_path / "store.wal"
    snap_path = tmp_path / "store.chunk"
    store = fill(ShardedTimeSeriesStore.open(wal_path, n_shards=4))
    assert wal_path.stat().st_size > len(MAGIC)
    n_bytes = store.checkpoint(snap_path)
    assert n_bytes > 0
    assert snap_path.stat().st_size == n_bytes
    assert wal_path.stat().st_size == len(MAGIC)
    assert not snap_path.with_name(snap_path.name + ".tmp").exists()
    store.close()


def test_recovery_from_snapshot_plus_wal_is_identical(tmp_path):
    wal_path = tmp_path / "store.wal"
    snap_path = tmp_path / "store.chunk"
    store = fill(ShardedTimeSeriesStore.open(wal_path, n_shards=4))
    store.checkpoint(snap_path)
    # Post-checkpoint appends land only in the (now short) WAL.
    fill(store, n_series=2, offset=64)
    expected = contents(store)
    store.close()

    recovered = ShardedTimeSeriesStore.open(wal_path, n_shards=4,
                                            snapshot=snap_path)
    assert contents(recovered) == expected
    recovered.close()


def test_recovery_without_snapshot_file_is_wal_only(tmp_path):
    wal_path = tmp_path / "store.wal"
    store = fill(ShardedTimeSeriesStore.open(wal_path, n_shards=2))
    expected = contents(store)
    store.close()
    recovered = ShardedTimeSeriesStore.open(
        wal_path, n_shards=2, snapshot=tmp_path / "never_written.chunk")
    assert contents(recovered) == expected
    recovered.close()


def test_checkpoint_without_wal_still_writes_snapshot(tmp_path):
    snap_path = tmp_path / "plain.chunk"
    store = fill(ShardedTimeSeriesStore(n_shards=2))
    assert store.checkpoint(snap_path) > 0
    recovered = ShardedTimeSeriesStore.open(tmp_path / "empty.wal",
                                            n_shards=2, snapshot=snap_path)
    assert contents(recovered) == contents(store)
    recovered.close()


def test_repeated_checkpoints_keep_snapshot_plus_wal_complete(tmp_path):
    wal_path = tmp_path / "store.wal"
    snap_path = tmp_path / "store.chunk"
    store = ShardedTimeSeriesStore.open(wal_path, n_shards=4)
    for round_no in range(3):
        fill(store, n_series=3, offset=round_no * 64)
        store.checkpoint(snap_path)
    fill(store, n_series=1, offset=3 * 64)
    expected = contents(store)
    store.close()
    recovered = ShardedTimeSeriesStore.open(wal_path, n_shards=4,
                                            snapshot=snap_path)
    assert contents(recovered) == expected
    recovered.close()


def test_checkpoint_under_concurrent_writers(tmp_path):
    wal_path = tmp_path / "store.wal"
    snap_path = tmp_path / "store.chunk"
    store = fill(ShardedTimeSeriesStore.open(wal_path, n_shards=4))
    stop = threading.Event()
    errors = []

    def writer(wid):
        series = SeriesId.make("live_ingest", {"host": f"w{wid}"})
        i = 0
        try:
            while not stop.is_set():
                ts = np.arange(i * 8, (i + 1) * 8, dtype=np.int64)
                store.insert_array(series, ts, np.full(8, float(i)))
                i += 1
        except Exception as exc:         # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
    for thread in threads:
        thread.start()
    try:
        for _ in range(3):
            store.checkpoint(snap_path)
    finally:
        stop.set()
        for thread in threads:
            thread.join()
    assert not errors
    expected = contents(store)
    store.close()
    recovered = ShardedTimeSeriesStore.open(wal_path, n_shards=4,
                                            snapshot=snap_path)
    assert contents(recovered) == expected
    recovered.close()


def test_wal_truncate_resets_and_accepts_new_records(tmp_path):
    path = tmp_path / "log.wal"
    log = WriteAheadLog(path, fsync_every=1)
    ts = np.arange(4, dtype=np.int64)
    log.append_array(SeriesId.make("a"), ts, np.ones(4))
    log.truncate()
    assert path.stat().st_size == len(MAGIC)
    assert list(log.records()) == []
    log.append_array(SeriesId.make("b"), ts, np.zeros(4))
    records = list(log.records())
    assert len(records) == 1
    assert records[0][0] == SeriesId.make("b")
    log.close()
