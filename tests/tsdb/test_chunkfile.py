"""Binary chunkfile format: byte-exact round trips with zero parsing.

The text snapshot is the compatibility oracle: whatever it round-trips,
the binary path must round-trip byte-identically — while loading
through memmap views (no copy) and the persisted zone maps (no
statistics recomputation).
"""

import numpy as np
import pytest

import repro.tsdb.model as model_module
from repro.tsdb.chunkfile import (
    MAGIC,
    deserialize_segments,
    read_chunkfile,
    serialize_segments,
    write_chunkfile,
)
from repro.tsdb.model import SeriesFormatError, SeriesId
from repro.tsdb.persist import read_store, save_store
from repro.tsdb.sharded import ShardedTimeSeriesStore
from repro.tsdb.storage import TimeSeriesStore


def _adversarial_store() -> TimeSeriesStore:
    """Every float edge the format must preserve bit-for-bit."""
    store = TimeSeriesStore()
    store.insert_array(
        SeriesId.make("edge.values", {"host": "h1"}),
        np.arange(8, dtype=np.int64),
        np.asarray([0.0, -0.0, np.nan, np.inf, -np.inf,
                    1e308, 5e-324, -1.5]))
    store.insert_array(
        SeriesId.make("all.nan"), [1, 2], [np.nan, np.nan])
    store.insert_array(
        SeriesId.make("unicode.tags", {"região": "São-Paulo"}),
        [10], [3.25])
    # A multi-chunk series: point appends sealed at buffer boundaries
    # plus one bulk chunk, so several zone-map segments persist.
    series = SeriesId.make("multi.chunk", {"host": "h2"})
    for t in range(10):
        store.insert(series, t, float(t) / 3.0)
    store.insert_array(series, np.arange(10, 30, dtype=np.int64),
                       np.linspace(-4.0, 4.0, 20))
    return store


def _assert_bitwise_equal_stores(a, b):
    assert a.series_ids() == b.series_ids()
    for series in a.series_ids():
        a_ts, a_vals = a.arrays(series)
        b_ts, b_vals = b.arrays(series)
        assert a_ts.tobytes() == b_ts.tobytes()
        assert a_vals.tobytes() == b_vals.tobytes()


class TestRoundTrip:
    def test_byte_identical_columns_and_metadata(self, tmp_path):
        store = _adversarial_store()
        path = tmp_path / "snap.tsdb"
        written = write_chunkfile(store, path)
        assert written == path.stat().st_size
        loaded = read_chunkfile(path)
        _assert_bitwise_equal_stores(store, loaded)
        assert loaded.metric_names() == store.metric_names()
        assert loaded.tag_keys() == store.tag_keys()
        assert loaded.time_range() == store.time_range()
        assert loaded.value_range() == store.value_range()
        assert loaded.version > 0

    def test_zone_maps_survive_without_recomputation(self, tmp_path,
                                                     monkeypatch):
        store = _adversarial_store()
        expected = {s: store.chunk_stats(s) for s in store.series_ids()}
        path = tmp_path / "snap.tsdb"
        write_chunkfile(store, path)

        def _fail(*args, **kwargs):      # pragma: no cover
            raise AssertionError("zone maps must load, not recompute")

        monkeypatch.setattr(model_module, "_chunk_stats", _fail)
        loaded = read_chunkfile(path)
        for series, segments in expected.items():
            assert loaded.chunk_stats(series) == segments

    def test_loaded_columns_are_readonly_memmap_views(self, tmp_path):
        path = tmp_path / "snap.tsdb"
        write_chunkfile(_adversarial_store(), path)
        loaded = read_chunkfile(path)
        for series in loaded.series_ids():
            ts, vals = loaded.arrays(series)
            assert not ts.flags.writeable
            assert not vals.flags.writeable
            # Views of the shared file map, not copies.
            assert not ts.flags.owndata and not vals.flags.owndata

    def test_empty_store_round_trips(self, tmp_path):
        path = tmp_path / "empty.tsdb"
        write_chunkfile(TimeSeriesStore(), path)
        loaded = read_chunkfile(path)
        assert len(loaded) == 0 and loaded.num_points() == 0

    def test_sharded_store_writes_consistent_cut(self, tmp_path):
        sharded = ShardedTimeSeriesStore(n_shards=4)
        for i in range(6):
            sharded.insert_array(
                SeriesId.make("cpu", {"host": f"h{i}"}),
                np.arange(100, dtype=np.int64),
                np.sin(np.arange(100) / (i + 1.0)))
        path = tmp_path / "sharded.tsdb"
        write_chunkfile(sharded, path)
        _assert_bitwise_equal_stores(sharded.snapshot(),
                                     read_chunkfile(path))


class TestSegmentCodec:
    def test_segments_round_trip_exactly(self):
        store = _adversarial_store()
        for series in store.series_ids():
            segments = list(store.chunk_stats(series))
            assert deserialize_segments(
                serialize_segments(segments)) == segments


class TestFormatErrors:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.tsdb"
        path.write_bytes(b"x" * 64)
        with pytest.raises(SeriesFormatError, match="bad magic"):
            read_chunkfile(path)

    def test_too_short_rejected(self, tmp_path):
        path = tmp_path / "short.tsdb"
        path.write_bytes(MAGIC[:4])
        with pytest.raises(SeriesFormatError, match="too short"):
            read_chunkfile(path)

    def test_truncated_directory_rejected(self, tmp_path):
        path = tmp_path / "trunc.tsdb"
        write_chunkfile(_adversarial_store(), path)
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(SeriesFormatError, match="truncated"):
            read_chunkfile(path)


class TestPersistDispatch:
    def test_save_store_binary_and_sniffing_read(self, tmp_path):
        store = _adversarial_store()
        path = tmp_path / "snap.bin"
        save_store(store, path, format="binary")
        assert path.read_bytes()[:8] == MAGIC
        _assert_bitwise_equal_stores(store, read_store(path))

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(SeriesFormatError, match="unknown snapshot"):
            save_store(TimeSeriesStore(), tmp_path / "x", format="xml")

    def test_binary_load_equals_text_oracle(self, tmp_path):
        """The compatibility contract: both formats reload to stores
        with identical series and identical column bytes."""
        store = TimeSeriesStore()
        rng = np.random.default_rng(3)
        for i in range(5):
            store.insert_array(
                SeriesId.make("flow.bytecount",
                              {"src": f"dn-{i}", "dest": "nn"}),
                np.arange(200, dtype=np.int64),
                rng.normal(size=200))
        text_path = tmp_path / "snap.txt"
        bin_path = tmp_path / "snap.bin"
        save_store(store, text_path, format="text")
        save_store(store, bin_path, format="binary")
        from_text = read_store(text_path)
        from_binary = read_store(bin_path)
        _assert_bitwise_equal_stores(from_text, from_binary)
        _assert_bitwise_equal_stores(store, from_binary)
