"""Unit tests for the columnar time series store."""

import numpy as np
import pytest

from repro.tsdb.model import SeriesFormatError, SeriesId
from repro.tsdb.storage import TimeSeriesStore


@pytest.fixture
def store() -> TimeSeriesStore:
    s = TimeSeriesStore()
    for i in range(3):
        sid = SeriesId.make("disk", {"host": f"dn-{i}"})
        s.insert_array(sid, range(10), [float(i)] * 10)
    s.insert_array(SeriesId.make("cpu", {"host": "dn-0"}),
                   range(5), [1.0, 2.0, 3.0, 4.0, 5.0])
    return s


class TestInsert:
    def test_len_counts_series(self, store):
        assert len(store) == 4

    def test_num_points(self, store):
        assert store.num_points() == 35

    def test_out_of_order_rejected(self):
        s = TimeSeriesStore()
        sid = SeriesId.make("m")
        s.insert(sid, 5, 1.0)
        with pytest.raises(SeriesFormatError):
            s.insert(sid, 3, 2.0)

    def test_length_mismatch_rejected(self):
        s = TimeSeriesStore()
        with pytest.raises(SeriesFormatError):
            s.insert_array(SeriesId.make("m"), [1, 2], [1.0])

    def test_contains(self, store):
        assert SeriesId.make("cpu", {"host": "dn-0"}) in store
        assert SeriesId.make("cpu", {"host": "dn-9"}) not in store


class TestIndexes:
    def test_metric_names(self, store):
        assert store.metric_names() == ["cpu", "disk"]

    def test_tag_keys(self, store):
        assert store.tag_keys() == ["host"]

    def test_tag_values(self, store):
        assert store.tag_values("host") == ["dn-0", "dn-1", "dn-2"]

    def test_find_by_exact_name(self, store):
        assert len(store.find(name="disk")) == 3

    def test_find_by_tag(self, store):
        found = store.find(tags={"host": "dn-0"})
        assert len(found) == 2  # cpu + disk

    def test_find_by_name_and_tag(self, store):
        found = store.find(name="disk", tags={"host": "dn-0"})
        assert len(found) == 1

    def test_find_with_glob(self, store):
        assert len(store.find(name="d*")) == 3
        assert len(store.find(tags={"host": "dn-*"})) == 4

    def test_find_no_match(self, store):
        assert store.find(name="nothing") == []


class TestArrays:
    def test_full_range(self, store):
        ts, vals = store.arrays(SeriesId.make("cpu", {"host": "dn-0"}))
        assert ts.tolist() == [0, 1, 2, 3, 4]
        assert vals.tolist() == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_clipped_range(self, store):
        ts, vals = store.arrays(SeriesId.make("cpu", {"host": "dn-0"}),
                                start=1, end=4)
        assert ts.tolist() == [1, 2, 3]
        assert vals.tolist() == [2.0, 3.0, 4.0]

    def test_unknown_series_raises(self, store):
        with pytest.raises(SeriesFormatError):
            store.arrays(SeriesId.make("nope"))

    def test_time_range(self, store):
        assert store.time_range() == (0, 9)

    def test_time_range_empty_store(self):
        with pytest.raises(SeriesFormatError):
            TimeSeriesStore().time_range()


class TestMutation:
    def test_apply_transform(self, store):
        sid = SeriesId.make("cpu", {"host": "dn-0"})
        store.apply(sid, lambda ts, vals: vals * 2)
        _, vals = store.arrays(sid)
        assert vals.tolist() == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_apply_length_change_rejected(self, store):
        sid = SeriesId.make("cpu", {"host": "dn-0"})
        with pytest.raises(SeriesFormatError):
            store.apply(sid, lambda ts, vals: vals[:-1])

    def test_merge(self, store):
        other = TimeSeriesStore()
        other.insert_array(SeriesId.make("new_metric"), range(3),
                           [1.0, 2.0, 3.0])
        store.merge(other)
        assert "new_metric" in store.metric_names()

    def test_iter_points_ordered(self, store):
        points = list(store.iter_points(
            [SeriesId.make("cpu", {"host": "dn-0"})]))
        assert [p.timestamp for p in points] == [0, 1, 2, 3, 4]
