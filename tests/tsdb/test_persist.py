"""Unit tests for store persistence snapshots."""

import numpy as np
import pytest

from repro.tsdb import SeriesId, TimeSeriesStore
from repro.tsdb.persist import (
    dumps_store,
    loads_store,
    read_store,
    save_store,
)


@pytest.fixture
def store() -> TimeSeriesStore:
    s = TimeSeriesStore()
    ts = np.arange(10)
    s.insert_array(SeriesId.make("cpu", {"host": "h1"}), ts,
                   np.linspace(1.0, 2.0, 10))
    s.insert_array(SeriesId.make("flow.bytecount",
                                 {"src": "a", "dest": "b"}), ts,
                   np.arange(10.0) * 100)
    s.insert_array(SeriesId.make("flow.packetcount",
                                 {"src": "a", "dest": "b"}), ts,
                   np.arange(10.0))
    return s


class TestRoundTrip:
    def test_names_and_tags_preserved(self, store):
        restored = loads_store(dumps_store(store))
        assert restored.series_ids() == store.series_ids()

    def test_values_preserved_exactly(self, store):
        restored = loads_store(dumps_store(store))
        for series in store.series_ids():
            _, original = store.arrays(series)
            _, loaded = restored.arrays(series)
            assert np.array_equal(original, loaded)

    def test_sibling_measurements_share_lines(self, store):
        text = dumps_store(store)
        flow_lines = [l for l in text.splitlines()
                      if l.startswith("0 flow")]
        assert len(flow_lines) == 1
        assert "bytecount=" in flow_lines[0]
        assert "packetcount=" in flow_lines[0]

    def test_header_written(self, store):
        assert dumps_store(store).startswith("# repro-tsdb-snapshot v1")

    def test_file_round_trip(self, store, tmp_path):
        path = tmp_path / "snapshot.tsdb"
        lines = save_store(store, path)
        assert lines > 0
        restored = read_store(path)
        assert restored.num_points() == store.num_points()

    def test_empty_store(self):
        restored = loads_store(dumps_store(TimeSeriesStore()))
        assert len(restored) == 0

    def test_scenario_store_round_trip(self):
        """A realistic end-to-end snapshot of a generated scenario."""
        from repro.workloads.pipeline import figure1_pipeline
        original, _ = figure1_pipeline(n_samples=50, seed=3)
        restored = loads_store(dumps_store(original))
        assert restored.num_points() == original.num_points()
        assert restored.metric_names() == original.metric_names()

    def test_vectorized_dump_matches_dict_reference(self, store):
        """The searchsorted merge must be byte-identical to the naive
        per-point dict walk it replaced."""
        assert dumps_store(store) == _reference_dump(store)

    def test_vectorized_dump_matches_reference_on_ragged_series(self):
        s = TimeSeriesStore()
        s.insert_array(SeriesId.make("m.a", {"k": "1"}),
                       np.array([0, 5, 9]), np.array([1.0, 2.0, 3.0]))
        s.insert_array(SeriesId.make("m.b", {"k": "1"}),
                       np.array([5, 7]), np.array([4.5, 6.5]))
        s.insert_array(SeriesId.make("m.a", {"k": "2"}),
                       np.array([2]), np.array([9.0]))
        assert dumps_store(s) == _reference_dump(s)


def _reference_dump(store: TimeSeriesStore) -> str:
    """The pre-vectorization dump_store, kept as a semantics oracle."""
    out = ["# repro-tsdb-snapshot v1"]
    grouped: dict = {}
    for series in store.series_ids():
        base, _, measurement = series.name.rpartition(".")
        if not base:
            base, measurement = series.name, "value"
        grouped.setdefault((base, series.tags), {})[measurement] = series
    for (base, tags), measurements in sorted(grouped.items()):
        tag_text = ",".join(f"{k}={v}" for k, v in tags)
        metric = f"{base}{{{tag_text}}}" if tag_text else base
        merged: dict = {}
        for key in sorted(measurements):
            ts_arr, values = store.arrays(measurements[key])
            for t, value in zip(ts_arr.tolist(), values.tolist()):
                merged.setdefault(t, []).append(f"{key}={value!r}")
        for t in sorted(merged):
            out.append(f"{t} {metric} {' '.join(merged[t])}")
    return "\n".join(out) + "\n"
