"""Unit tests for store persistence snapshots."""

import numpy as np
import pytest

from repro.tsdb import SeriesId, TimeSeriesStore
from repro.tsdb.persist import (
    dumps_store,
    loads_store,
    read_store,
    save_store,
)


@pytest.fixture
def store() -> TimeSeriesStore:
    s = TimeSeriesStore()
    ts = np.arange(10)
    s.insert_array(SeriesId.make("cpu", {"host": "h1"}), ts,
                   np.linspace(1.0, 2.0, 10))
    s.insert_array(SeriesId.make("flow.bytecount",
                                 {"src": "a", "dest": "b"}), ts,
                   np.arange(10.0) * 100)
    s.insert_array(SeriesId.make("flow.packetcount",
                                 {"src": "a", "dest": "b"}), ts,
                   np.arange(10.0))
    return s


class TestRoundTrip:
    def test_names_and_tags_preserved(self, store):
        restored = loads_store(dumps_store(store))
        assert restored.series_ids() == store.series_ids()

    def test_values_preserved_exactly(self, store):
        restored = loads_store(dumps_store(store))
        for series in store.series_ids():
            _, original = store.arrays(series)
            _, loaded = restored.arrays(series)
            assert np.array_equal(original, loaded)

    def test_sibling_measurements_share_lines(self, store):
        text = dumps_store(store)
        flow_lines = [l for l in text.splitlines()
                      if l.startswith("0 flow")]
        assert len(flow_lines) == 1
        assert "bytecount=" in flow_lines[0]
        assert "packetcount=" in flow_lines[0]

    def test_header_written(self, store):
        assert dumps_store(store).startswith("# repro-tsdb-snapshot v1")

    def test_file_round_trip(self, store, tmp_path):
        path = tmp_path / "snapshot.tsdb"
        lines = save_store(store, path)
        assert lines > 0
        restored = read_store(path)
        assert restored.num_points() == store.num_points()

    def test_empty_store(self):
        restored = loads_store(dumps_store(TimeSeriesStore()))
        assert len(restored) == 0

    def test_scenario_store_round_trip(self):
        """A realistic end-to-end snapshot of a generated scenario."""
        from repro.workloads.pipeline import figure1_pipeline
        original, _ = figure1_pipeline(n_samples=50, seed=3)
        restored = loads_store(dumps_store(original))
        assert restored.num_points() == original.num_points()
        assert restored.metric_names() == original.metric_names()
