"""Columnar fast-path tests: chunked storage, vectorized downsampling,
and columnar table materialisation must be *bitwise* identical to the
seed per-point substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sql import Database
from repro.tsdb import (
    Downsampler,
    RollupCatalog,
    RollupSpec,
    ScanQuery,
    SeriesId,
    TimeSeriesStore,
    register_store,
    tsdb_table,
)
from repro.tsdb.adapter import TSDB_COLUMNS, observations_to_table
from repro.tsdb.model import CHUNK_TARGET, SeriesData, SeriesFormatError
from repro.tsdb.reference import naive_downsample, naive_tsdb_table_rows

ALL_AGGS = ["avg", "sum", "min", "max", "count", "median", "p95", "p99"]

finite_values = st.floats(-1e9, 1e9, allow_nan=False, allow_infinity=False)


def naive_rollup_rows(store, spec):
    result = ScanQuery(name=spec.metric, tags=spec.tags,
                       downsample=Downsampler(spec.interval, spec.agg)
                       ).run(store)
    rows = []
    for series, (ts_arr, values) in result.columns.items():
        tags = series.tag_map()
        for t, v in zip(ts_arr.tolist(), values.tolist()):
            rows.append((int(t), series.name, tags, float(v)))
    rows.sort(key=lambda r: (r[0], r[1]))
    return rows


# ----------------------------------------------------------------------
# Chunked SeriesData
# ----------------------------------------------------------------------
class TestChunkedSeriesData:
    def test_append_buffers_then_seals(self):
        col = SeriesData(SeriesId.make("m"))
        for t in range(CHUNK_TARGET - 1):
            col.append(t, float(t))
        assert col.num_chunks == 1          # one live buffer
        col.append(CHUNK_TARGET - 1, 1.0)
        assert col.num_chunks == 1          # sealed into one chunk
        assert len(col) == CHUNK_TARGET

    def test_extend_appends_one_chunk(self):
        col = SeriesData(SeriesId.make("m"))
        col.extend(np.arange(10), np.ones(10))
        col.extend(np.arange(10, 30), np.zeros(20))
        assert col.num_chunks == 2
        assert len(col) == 30

    def test_consolidation_compacts_and_caches(self):
        col = SeriesData(SeriesId.make("m"))
        col.extend(np.arange(5), np.ones(5))
        col.append(5, 2.0)
        assert col.num_chunks == 2
        ts1, vals1 = col.arrays()
        assert col.num_chunks == 1          # compacted
        ts2, vals2 = col.arrays()
        assert ts1 is ts2 and vals1 is vals2    # cached, no copy
        assert ts1.tolist() == [0, 1, 2, 3, 4, 5]
        assert vals1.tolist() == [1.0, 1.0, 1.0, 1.0, 1.0, 2.0]

    def test_mixed_append_extend_round_trip(self):
        col = SeriesData(SeriesId.make("m"))
        col.append(0, 0.5)
        col.extend([1, 2, 3], [1.0, 2.0, 3.0])
        col.append(3, 4.0)
        assert col.timestamps.tolist() == [0, 1, 2, 3, 3]
        assert col.values.tolist() == [0.5, 1.0, 2.0, 3.0, 4.0]

    def test_views_are_read_only(self):
        col = SeriesData(SeriesId.make("m"), [0, 1], [1.0, 2.0])
        ts, vals = col.arrays()
        with pytest.raises(ValueError):
            ts[0] = 7
        with pytest.raises(ValueError):
            vals[0] = 7.0

    def test_min_max_o1(self):
        col = SeriesData(SeriesId.make("m"))
        assert col.min_timestamp is None and col.max_timestamp is None
        col.extend([3, 5, 9], [0.0, 0.0, 0.0])
        col.append(11, 1.0)
        assert col.min_timestamp == 3
        assert col.max_timestamp == 11

    def test_out_of_order_point_append_rejected(self):
        col = SeriesData(SeriesId.make("m"), [5], [1.0])
        with pytest.raises(SeriesFormatError):
            col.append(4, 2.0)

    def test_out_of_order_within_bulk_rejected(self):
        col = SeriesData(SeriesId.make("m"))
        with pytest.raises(SeriesFormatError, match="out-of-order"):
            col.extend([0, 2, 1], [1.0, 2.0, 3.0])

    def test_out_of_order_across_bulk_rejected(self):
        col = SeriesData(SeriesId.make("m"), [10], [1.0])
        with pytest.raises(SeriesFormatError, match="out-of-order"):
            col.extend([4, 5], [1.0, 2.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(SeriesFormatError, match="equal length"):
            SeriesData(SeriesId.make("m"), [0, 1], [1.0])

    def test_replace_values_keeps_timestamps(self):
        col = SeriesData(SeriesId.make("m"), [0, 1, 2], [1.0, 2.0, 3.0])
        col.replace_values(np.array([9.0, 8.0, 7.0]))
        assert col.timestamps.tolist() == [0, 1, 2]
        assert col.values.tolist() == [9.0, 8.0, 7.0]
        with pytest.raises(SeriesFormatError):
            col.replace_values(np.array([1.0]))

    def test_replace_values_on_empty_series(self):
        """Regression: an empty replacement must not store an empty
        chunk (which broke the non-empty-chunk invariant behind the
        O(1) min/max and subsequent appends)."""
        col = SeriesData(SeriesId.make("m"))
        col.replace_values(np.empty(0))
        assert col.min_timestamp is None and col.max_timestamp is None
        col.append(0, 1.0)
        assert col.timestamps.tolist() == [0]

    def test_extend_copies_input(self):
        src = np.arange(4)
        vals = np.ones(4)
        col = SeriesData(SeriesId.make("m"), src, vals)
        src[0] = 99
        vals[0] = 99.0
        assert col.timestamps.tolist() == [0, 1, 2, 3]
        assert col.values.tolist() == [1.0, 1.0, 1.0, 1.0]

    @given(st.lists(st.tuples(st.integers(0, 50), finite_values),
                    min_size=0, max_size=120))
    @settings(max_examples=50, deadline=None)
    def test_chunked_equals_point_appends(self, pairs):
        """Any interleaving of bulk/point ingest matches pure appends."""
        pairs.sort(key=lambda p: p[0])
        reference = SeriesData(SeriesId.make("ref"))
        chunked = SeriesData(SeriesId.make("chunked"))
        for t, v in pairs:
            reference.append(t, v)
        i = 0
        toggle = True
        while i < len(pairs):
            width = 3 if toggle else 1
            block = pairs[i:i + width]
            if toggle:
                chunked.extend([t for t, _ in block], [v for _, v in block])
            else:
                for t, v in block:
                    chunked.append(t, v)
            toggle = not toggle
            i += width
        assert np.array_equal(reference.timestamps, chunked.timestamps)
        assert np.array_equal(reference.values, chunked.values)


# ----------------------------------------------------------------------
# Vectorized Downsampler
# ----------------------------------------------------------------------
class TestDownsamplerBitwiseParity:
    @pytest.mark.parametrize("agg", ALL_AGGS)
    def test_dense_equal_width_buckets(self, agg):
        rng = np.random.default_rng(7)
        ts = np.arange(720, dtype=np.int64)
        vals = rng.standard_normal(720) * 1e3
        for interval in (1, 2, 5, 60, 720, 1000):
            ref = naive_downsample(interval, agg, ts, vals)
            got = Downsampler(interval, agg).apply(ts, vals)
            assert np.array_equal(ref[0], got[0]), (agg, interval)
            assert np.array_equal(ref[1], got[1]), (agg, interval)

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_property_gappy_and_duplicate_timestamps(self, data):
        """Parity on gappy series with duplicate timestamps.

        Bitwise for every aggregate except ragged-bucket sum/avg, whose
        segmented ``reduceat`` accumulates left-to-right while the
        reference ``np.sum`` is pairwise — those carry a documented
        1e-9 relative tolerance (see tests/tsdb/test_ragged_downsample).
        """
        n = data.draw(st.integers(1, 80))
        ts = np.sort(np.asarray(
            data.draw(st.lists(st.integers(0, 200), min_size=n, max_size=n)),
            dtype=np.int64))
        vals = np.asarray(
            data.draw(st.lists(finite_values, min_size=n, max_size=n)))
        interval = data.draw(st.integers(1, 25))
        agg = data.draw(st.sampled_from(ALL_AGGS))
        ref = naive_downsample(interval, agg, ts, vals)
        got = Downsampler(interval, agg).apply(ts, vals)
        assert np.array_equal(ref[0], got[0])
        if agg in ("sum", "avg"):
            assert np.allclose(ref[1], got[1], rtol=1e-9, atol=0.0)
        else:
            assert np.array_equal(ref[1], got[1])

    @pytest.mark.parametrize("agg", ALL_AGGS)
    def test_empty_input(self, agg):
        out_ts, out_vals = Downsampler(5, agg).apply(
            np.empty(0, dtype=np.int64), np.empty(0))
        assert out_ts.size == 0 and out_vals.size == 0

    @pytest.mark.parametrize("agg", ALL_AGGS)
    def test_empty_scan_range(self, agg):
        """A scan clipped to an empty window downsamples to empty."""
        store = TimeSeriesStore()
        store.insert_array(SeriesId.make("m"), range(10), np.ones(10))
        result = ScanQuery(name="m", start=100, end=200,
                           downsample=Downsampler(5, agg)).run(store)
        ts, vals = result.columns[SeriesId.make("m")]
        assert ts.size == 0 and vals.size == 0

    def test_single_point(self):
        for agg in ALL_AGGS:
            ref = naive_downsample(7, agg, np.array([13]), np.array([2.5]))
            got = Downsampler(7, agg).apply(np.array([13]), np.array([2.5]))
            assert np.array_equal(ref[0], got[0])
            assert np.array_equal(ref[1], got[1])


# ----------------------------------------------------------------------
# Columnar tsdb_table / rollups
# ----------------------------------------------------------------------
def _mixed_store(seed=0, n_series=12, horizon=60):
    rng = np.random.default_rng(seed)
    store = TimeSeriesStore()
    for i in range(n_series):
        name = ["disk", "cpu", "runtime"][i % 3]
        sid = SeriesId.make(name, {"host": f"h{i % 4}", "idx": str(i)})
        n = int(rng.integers(1, horizon))
        ts = np.sort(rng.integers(0, horizon, n))
        store.insert_array(sid, ts, rng.standard_normal(n))
    return store


class TestColumnarTsdbTable:
    @pytest.mark.parametrize("clip", [(None, None), (10, 40), (59, 60),
                                      (1000, 2000)])
    def test_rows_identical_to_naive(self, clip):
        store = _mixed_store()
        ref = naive_tsdb_table_rows(store, *clip)
        table = tsdb_table(store, *clip)
        assert table.columns == TSDB_COLUMNS
        assert len(table) == len(ref)
        assert table.rows == ref

    def test_cells_are_plain_python_values(self):
        table = tsdb_table(_mixed_store())
        row = table.rows[0]
        assert type(row[0]) is int
        assert type(row[1]) is str
        assert type(row[2]) is dict
        assert type(row[3]) is float

    def test_rows_materialise_lazily(self):
        table = tsdb_table(_mixed_store())
        assert not table.is_materialised()
        assert table.column("value")            # columnar read
        assert not table.is_materialised()
        _ = table.rows
        assert table.is_materialised()

    def test_tag_dict_shared_per_series(self):
        store = TimeSeriesStore()
        store.insert_array(SeriesId.make("m", {"host": "h1"}),
                           range(5), np.ones(5))
        table = tsdb_table(store)
        tags = [r[2] for r in table.rows]
        assert all(t is tags[0] for t in tags)

    def test_empty_store(self):
        table = tsdb_table(TimeSeriesStore())
        assert table.columns == TSDB_COLUMNS
        assert len(table) == 0 and table.rows == []

    def test_observations_to_table_empty_series_skipped(self):
        store = _mixed_store()
        items = [(s, np.empty(0, dtype=np.int64), np.empty(0))
                 for s in store.series_ids()]
        assert len(observations_to_table(items)) == 0

    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_property_random_stores_match_naive(self, seed):
        store = _mixed_store(seed=seed, n_series=6, horizon=30)
        assert tsdb_table(store).rows == naive_tsdb_table_rows(store)


class TestColumnarRollups:
    @pytest.mark.parametrize("agg", ALL_AGGS)
    def test_rollup_identical_to_naive(self, agg):
        store = _mixed_store(seed=3)
        spec = RollupSpec(f"r_{agg}", interval=10, agg=agg, metric="disk")
        catalog = RollupCatalog(store)
        catalog.define(spec)
        assert catalog.table(spec.name).rows == naive_rollup_rows(store, spec)

    def test_rollup_with_tag_filter(self):
        store = _mixed_store(seed=4)
        spec = RollupSpec("h1", interval=15, agg="p95", metric="cpu",
                          tags={"host": "h1"})
        catalog = RollupCatalog(store)
        catalog.define(spec)
        assert catalog.table("h1").rows == naive_rollup_rows(store, spec)


# ----------------------------------------------------------------------
# Version-keyed caches
# ----------------------------------------------------------------------
class TestStoreVersion:
    def test_monotonic_bumps_per_mutation(self):
        store = TimeSeriesStore()
        assert store.version == 0
        store.insert(SeriesId.make("m"), 0, 1.0)
        v1 = store.version
        store.insert_array(SeriesId.make("n"), [0, 1], [1.0, 2.0])
        v2 = store.version
        store.apply(SeriesId.make("m"), lambda ts, vals: vals * 2)
        v3 = store.version
        other = TimeSeriesStore()
        other.insert(SeriesId.make("o"), 0, 5.0)
        store.merge(other)
        v4 = store.version
        assert 0 < v1 < v2 < v3 < v4

    def test_empty_bulk_insert_is_a_noop(self):
        store = TimeSeriesStore()
        store.insert_array(SeriesId.make("m"), [], [])
        assert store.version == 0
        assert len(store) == 0
        assert SeriesId.make("m") not in store

    def test_rollup_stale_after_value_mutation(self):
        """Regression: ``num_points`` keying left rollups stale after a
        value-mutating ``apply`` (fault injection) because the point
        count does not change.  Version keying must refresh them."""
        store = TimeSeriesStore()
        sid = SeriesId.make("latency", {"host": "h1"})
        store.insert_array(sid, range(20), np.ones(20))
        catalog = RollupCatalog(store)
        catalog.define(RollupSpec("lat", interval=10, agg="avg",
                                  metric="latency"))
        before = catalog.table("lat")
        assert [r[3] for r in before.rows] == [1.0, 1.0]
        points_before = store.num_points()
        store.apply(sid, lambda ts, vals: vals + 9.0)   # inject a fault
        assert store.num_points() == points_before       # count unchanged!
        assert not catalog.is_cached("lat")
        after = catalog.table("lat")
        assert [r[3] for r in after.rows] == [10.0, 10.0]

    def test_sql_tsdb_provider_refreshes_after_mutation(self):
        store = TimeSeriesStore()
        sid = SeriesId.make("m")
        store.insert_array(sid, range(4), np.ones(4))
        db = Database()
        register_store(db, store)
        assert db.sql("SELECT SUM(value) s FROM tsdb").rows == [(4.0,)]
        store.apply(sid, lambda ts, vals: vals * 3)
        assert db.sql("SELECT SUM(value) s FROM tsdb").rows == [(12.0,)]
        store.insert(sid, 4, 1.0)
        assert db.sql("SELECT SUM(value) s FROM tsdb").rows == [(13.0,)]

    def test_sql_rollup_provider_refreshes_after_mutation(self):
        store = TimeSeriesStore()
        sid = SeriesId.make("m")
        store.insert_array(sid, range(10), np.ones(10))
        catalog = RollupCatalog(store)
        catalog.define(RollupSpec("m_5", interval=5, agg="sum", metric="m"))
        db = Database()
        catalog.register_all(db)
        assert db.sql("SELECT SUM(value) s FROM m_5").rows == [(10.0,)]
        store.apply(sid, lambda ts, vals: vals * 2)
        assert db.sql("SELECT SUM(value) s FROM m_5").rows == [(20.0,)]

    def test_versioned_provider_not_reinvoked_when_unchanged(self):
        store = TimeSeriesStore()
        store.insert_array(SeriesId.make("m"), range(4), np.ones(4))
        db = Database()
        calls = []

        def provider():
            calls.append(1)
            return tsdb_table(store)

        db.register_versioned_provider("t", provider, lambda: store.version)
        db.sql("SELECT * FROM t")
        db.sql("SELECT * FROM t")
        assert len(calls) == 1
        store.insert(SeriesId.make("m"), 4, 1.0)
        db.sql("SELECT * FROM t")
        assert len(calls) == 2


# ----------------------------------------------------------------------
# Store fast paths
# ----------------------------------------------------------------------
class TestStoreFastPaths:
    def test_time_range_constant_time_bookkeeping(self):
        store = TimeSeriesStore()
        store.insert_array(SeriesId.make("a"), [5, 6, 7], np.ones(3))
        store.insert_array(SeriesId.make("b"), [2, 9], np.ones(2))
        assert store.time_range() == (2, 9)
        store.insert(SeriesId.make("c"), 15, 1.0)
        assert store.time_range() == (2, 15)

    def test_tag_secondary_index(self):
        store = TimeSeriesStore()
        store.insert_array(SeriesId.make("a", {"host": "h1", "dc": "east"}),
                           [0], [1.0])
        store.insert_array(SeriesId.make("a", {"host": "h2"}), [0], [1.0])
        assert store.tag_keys() == ["dc", "host"]
        assert store.tag_values("host") == ["h1", "h2"]
        assert store.tag_values("dc") == ["east"]
        assert store.tag_values("nope") == []

    def test_arrays_returns_read_only_views(self):
        store = TimeSeriesStore()
        store.insert_array(SeriesId.make("m"), range(10), np.ones(10))
        ts, vals = store.arrays(SeriesId.make("m"))
        with pytest.raises(ValueError):
            vals[0] = 5.0
        clipped_ts, _ = store.arrays(SeriesId.make("m"), start=2, end=5)
        assert clipped_ts.base is not None      # a view, not a copy
        assert clipped_ts.tolist() == [2, 3, 4]

    def test_iter_arrays_bulk_path(self):
        store = _mixed_store(seed=9, n_series=4)
        triples = list(store.iter_arrays())
        assert [s for s, _, _ in triples] == store.series_ids()
        for series, ts, vals in triples:
            ref_ts, ref_vals = store.arrays(series)
            assert np.array_equal(ts, ref_ts)
            assert np.array_equal(vals, ref_vals)

    def test_from_arrays_equals_manual_bulk_inserts(self):
        ts = np.arange(5)
        built = TimeSeriesStore.from_arrays({
            SeriesId.make("a"): (ts, np.ones(5)),
            SeriesId.make("b"): (ts, np.zeros(5)),
        })
        manual = TimeSeriesStore()
        manual.insert_array(SeriesId.make("a"), ts, np.ones(5))
        manual.insert_array(SeriesId.make("b"), ts, np.zeros(5))
        assert built.series_ids() == manual.series_ids()
        assert built.num_points() == manual.num_points()

    def test_apply_transform_cannot_corrupt_cache(self):
        store = TimeSeriesStore()
        sid = SeriesId.make("m")
        store.insert_array(sid, range(4), np.ones(4))

        def in_place(ts, vals):
            vals *= 10.0        # mutates its (copied) input
            return vals

        store.apply(sid, in_place)
        _, vals = store.arrays(sid)
        assert vals.tolist() == [10.0] * 4

    def test_scan_reuses_cached_views(self):
        store = TimeSeriesStore()
        sid = SeriesId.make("m")
        store.insert_array(sid, range(10), np.arange(10.0))
        ts1, _ = store.arrays(sid)
        ts2, _ = store.arrays(sid)
        assert ts1 is ts2           # no per-scan rebuild
