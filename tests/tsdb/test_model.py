"""Unit tests for the tsdb data model."""

import pytest

from repro.tsdb.model import (
    DataPoint,
    SeriesFormatError,
    SeriesId,
    group_key_by_name,
    group_key_by_tag,
    parse_series_expr,
    unique_names,
)


class TestSeriesId:
    def test_make_sorts_tags(self):
        a = SeriesId.make("m", {"b": "2", "a": "1"})
        b = SeriesId.make("m", {"a": "1", "b": "2"})
        assert a == b
        assert hash(a) == hash(b)

    def test_empty_name_rejected(self):
        with pytest.raises(SeriesFormatError):
            SeriesId.make("")

    def test_tag_lookup(self):
        s = SeriesId.make("disk", {"host": "dn-1", "type": "read"})
        assert s.tag("host") == "dn-1"
        assert s.tag("missing") is None
        assert s.tag("missing", "fallback") == "fallback"

    def test_tag_map_round_trip(self):
        tags = {"host": "dn-1", "type": "read"}
        assert SeriesId.make("disk", tags).tag_map() == tags

    def test_with_tags_overrides(self):
        s = SeriesId.make("disk", {"host": "dn-1"})
        s2 = s.with_tags(host="dn-2", extra="x")
        assert s2.tag("host") == "dn-2"
        assert s2.tag("extra") == "x"
        assert s.tag("host") == "dn-1"  # original untouched

    def test_str_rendering(self):
        assert str(SeriesId.make("cpu")) == "cpu"
        assert str(SeriesId.make("disk", {"host": "d1"})) == "disk{host=d1}"

    def test_matches_exact_name(self):
        s = SeriesId.make("disk", {"host": "datanode-1"})
        assert s.matches("disk")
        assert not s.matches("cpu")

    def test_matches_name_glob(self):
        s = SeriesId.make("disk_read_latency")
        assert s.matches("disk_*")
        assert s.matches("*latency")
        assert not s.matches("cpu_*")

    def test_matches_tag_glob(self):
        s = SeriesId.make("disk", {"host": "datanode-3"})
        assert s.matches(tags={"host": "datanode*"})
        assert not s.matches(tags={"host": "namenode*"})

    def test_matches_missing_tag_fails(self):
        s = SeriesId.make("disk", {"host": "d1"})
        assert not s.matches(tags={"rack": "r1"})


class TestDataPoint:
    def test_negative_timestamp_rejected(self):
        with pytest.raises(SeriesFormatError):
            DataPoint(series=SeriesId.make("m"), timestamp=-1, value=1.0)

    def test_valid_point(self):
        p = DataPoint(series=SeriesId.make("m"), timestamp=5, value=2.5)
        assert p.timestamp == 5
        assert p.value == 2.5


class TestParseSeriesExpr:
    def test_name_only(self):
        assert parse_series_expr("runtime") == ("runtime", {})

    def test_name_with_tags(self):
        name, tags = parse_series_expr(
            "disk{host=datanode-1, type=read_latency}")
        assert name == "disk"
        assert tags == {"host": "datanode-1", "type": "read_latency"}

    def test_bad_tag_format(self):
        with pytest.raises(SeriesFormatError):
            parse_series_expr("disk{hostdn}")

    def test_garbage_rejected(self):
        with pytest.raises(SeriesFormatError):
            parse_series_expr("{x=1}")

    def test_empty_tag_section(self):
        assert parse_series_expr("disk{}") == ("disk", {})


class TestGroupKeys:
    def test_group_by_name(self):
        s = SeriesId.make("disk", {"host": "d1"})
        assert group_key_by_name(s) == "disk"

    def test_group_by_tag(self):
        s = SeriesId.make("disk", {"host": "d1"})
        assert group_key_by_tag("host")(s) == "d1"

    def test_group_by_missing_tag_is_null(self):
        s = SeriesId.make("disk")
        assert group_key_by_tag("host")(s) == "NULL"

    def test_unique_names(self):
        series = [SeriesId.make("b"), SeriesId.make("a", {"x": "1"}),
                  SeriesId.make("a", {"x": "2"})]
        assert unique_names(series) == ["a", "b"]
