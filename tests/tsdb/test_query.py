"""Unit tests for scans, downsampling and grid alignment."""

import numpy as np
import pytest

from repro.tsdb.model import SeriesFormatError, SeriesId
from repro.tsdb.query import Downsampler, ScanQuery, align_to_grid, aggregator
from repro.tsdb.storage import TimeSeriesStore


class TestAggregator:
    @pytest.mark.parametrize("name,expected", [
        ("avg", 2.0), ("sum", 6.0), ("min", 1.0), ("max", 3.0),
        ("count", 3.0), ("median", 2.0),
    ])
    def test_named_aggregators(self, name, expected):
        fn = aggregator(name)
        assert fn(np.array([1.0, 2.0, 3.0])) == expected

    def test_percentiles(self):
        data = np.arange(1, 101, dtype=float)
        assert aggregator("p95")(data) == pytest.approx(95.05)
        assert aggregator("p99")(data) == pytest.approx(99.01)

    def test_unknown_raises(self):
        with pytest.raises(SeriesFormatError):
            aggregator("mode")

    def test_case_insensitive(self):
        assert aggregator("AVG")(np.array([2.0, 4.0])) == 3.0


class TestDownsampler:
    def test_avg_buckets(self):
        ds = Downsampler(interval=2, agg="avg")
        ts = np.array([0, 1, 2, 3, 4])
        vals = np.array([1.0, 3.0, 5.0, 7.0, 9.0])
        out_ts, out_vals = ds.apply(ts, vals)
        assert out_ts.tolist() == [0, 2, 4]
        assert out_vals.tolist() == [2.0, 6.0, 9.0]

    def test_max_buckets(self):
        ds = Downsampler(interval=3, agg="max")
        ts = np.arange(6)
        vals = np.array([1.0, 9.0, 2.0, 4.0, 8.0, 3.0])
        _, out_vals = ds.apply(ts, vals)
        assert out_vals.tolist() == [9.0, 8.0]

    def test_empty_input(self):
        ds = Downsampler(interval=5)
        out_ts, out_vals = ds.apply(np.empty(0, dtype=np.int64),
                                    np.empty(0))
        assert out_ts.size == 0 and out_vals.size == 0

    def test_bad_interval(self):
        with pytest.raises(SeriesFormatError):
            Downsampler(interval=0)


class TestAlignToGrid:
    def test_exact_alignment(self):
        ts = np.array([0, 1, 2])
        vals = np.array([1.0, 2.0, 3.0])
        grid = np.array([0, 1, 2])
        assert align_to_grid(ts, vals, grid).tolist() == [1.0, 2.0, 3.0]

    def test_nearest_neighbour_fill(self):
        ts = np.array([0, 10])
        vals = np.array([1.0, 9.0])
        grid = np.array([0, 3, 7, 10])
        # 3 is closer to 0; 7 closer to 10.
        assert align_to_grid(ts, vals, grid).tolist() == [1.0, 1.0, 9.0, 9.0]

    def test_tie_goes_to_earlier(self):
        ts = np.array([0, 10])
        vals = np.array([1.0, 9.0])
        grid = np.array([5])
        assert align_to_grid(ts, vals, grid).tolist() == [1.0]

    def test_out_of_range_extends_edges(self):
        ts = np.array([5, 6])
        vals = np.array([2.0, 4.0])
        grid = np.array([0, 5, 6, 20])
        assert align_to_grid(ts, vals, grid).tolist() == [2.0, 2.0, 4.0, 4.0]

    def test_empty_series_gives_nan(self):
        out = align_to_grid(np.empty(0, dtype=np.int64), np.empty(0),
                            np.array([1, 2]))
        assert np.isnan(out).all()


class TestScanQuery:
    @pytest.fixture
    def store(self):
        s = TimeSeriesStore()
        s.insert_array(SeriesId.make("a", {"host": "h1"}), range(10),
                       np.arange(10.0))
        s.insert_array(SeriesId.make("a", {"host": "h2"}), range(10),
                       np.arange(10.0) * 2)
        s.insert_array(SeriesId.make("b"), range(0, 10, 2),
                       [5.0, 5.0, 5.0, 5.0, 5.0])
        return s

    def test_scan_by_name(self, store):
        result = ScanQuery(name="a").run(store)
        assert len(result) == 2

    def test_scan_time_clip(self, store):
        result = ScanQuery(name="a", start=5, end=8).run(store)
        ts, _ = next(iter(result.columns.values()))
        assert ts.tolist() == [5, 6, 7]

    def test_scan_with_downsample(self, store):
        result = ScanQuery(name="a",
                           downsample=Downsampler(5, "avg")).run(store)
        ts, vals = result.columns[SeriesId.make("a", {"host": "h1"})]
        assert ts.tolist() == [0, 5]
        assert vals.tolist() == [2.0, 7.0]

    def test_to_matrix_shapes(self, store):
        result = ScanQuery().run(store)
        matrix, ids, grid = result.to_matrix()
        assert matrix.shape == (10, 3)
        assert len(ids) == 3
        assert grid.tolist() == list(range(10))

    def test_matrix_interpolates_sparse_series(self, store):
        result = ScanQuery(name="b").run(store)
        matrix, _, grid = result.to_matrix(np.arange(10))
        # series b only has even timestamps; odd ones take neighbours
        assert not np.isnan(matrix).any()

    def test_explicit_series_ids(self, store):
        sid = SeriesId.make("b")
        result = ScanQuery(series_ids=[sid]).run(store)
        assert result.series_ids() == [sid]

    def test_grid_of_empty_result(self):
        result = ScanQuery(name="zzz").run(TimeSeriesStore())
        assert result.grid().size == 0
