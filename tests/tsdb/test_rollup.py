"""Unit tests for materialised rollup views."""

import numpy as np
import pytest

from repro.sql import Database
from repro.tsdb import SeriesId, TimeSeriesStore
from repro.tsdb.model import SeriesFormatError
from repro.tsdb.rollup import RollupCatalog, RollupSpec


@pytest.fixture
def store() -> TimeSeriesStore:
    s = TimeSeriesStore()
    ts = np.arange(60)
    s.insert_array(SeriesId.make("latency", {"host": "h1"}), ts,
                   np.arange(60.0))
    s.insert_array(SeriesId.make("latency", {"host": "h2"}), ts,
                   np.full(60, 5.0))
    s.insert_array(SeriesId.make("cpu", {"host": "h1"}), ts,
                   np.ones(60))
    return s


class TestRollupSpec:
    def test_validation(self):
        with pytest.raises(SeriesFormatError):
            RollupSpec("bad", interval=0)
        with pytest.raises(SeriesFormatError):
            RollupSpec("bad", interval=5, agg="nope")


class TestRollupCatalog:
    def test_materialise_downsampled(self, store):
        catalog = RollupCatalog(store)
        catalog.define(RollupSpec("latency_10m", interval=10, agg="avg",
                                  metric="latency"))
        table = catalog.table("latency_10m")
        # 60 samples / 10 per bucket * 2 hosts = 12 rows.
        assert len(table) == 12
        h1 = [r for r in table.rows if r[2] == {"host": "h1"}]
        assert h1[0][3] == pytest.approx(4.5)   # mean of 0..9

    def test_p99_rollup(self, store):
        catalog = RollupCatalog(store)
        catalog.define(RollupSpec("latency_p99", interval=60, agg="p99",
                                  metric="latency"))
        table = catalog.table("latency_p99")
        h1 = [r for r in table.rows if r[2] == {"host": "h1"}][0]
        assert h1[3] == pytest.approx(np.percentile(np.arange(60.0), 99))

    def test_cache_hit_and_invalidation(self, store):
        catalog = RollupCatalog(store)
        catalog.define(RollupSpec("v", interval=10, metric="cpu"))
        catalog.table("v")
        assert catalog.is_cached("v")
        store.insert(SeriesId.make("cpu", {"host": "h1"}), 60, 2.0)
        assert not catalog.is_cached("v")
        refreshed = catalog.table("v")
        assert len(refreshed) == 7     # one more bucket

    def test_unknown_rollup(self, store):
        with pytest.raises(SeriesFormatError):
            RollupCatalog(store).table("zzz")

    def test_sql_registration(self, store):
        catalog = RollupCatalog(store)
        catalog.define(RollupSpec("latency_10m", interval=10,
                                  metric="latency"))
        db = Database()
        catalog.register_all(db)
        result = db.sql(
            "SELECT tag['host'] h, AVG(value) v FROM latency_10m "
            "GROUP BY tag['host'] ORDER BY h")
        assert result.column("h") == ["h1", "h2"]

    def test_tag_filtered_rollup(self, store):
        catalog = RollupCatalog(store)
        catalog.define(RollupSpec("h1_only", interval=30,
                                  metric="latency",
                                  tags={"host": "h1"}))
        table = catalog.table("h1_only")
        assert all(r[2] == {"host": "h1"} for r in table.rows)
