"""Case study §5.2: disentangling multiple sources of variation.

A production-like workload drives large runtime swings, and an unmonitored
hypervisor drops packets mostly when load is high.  An unconditioned
search drowns in load-driven families; conditioning the analysis on the
observed input size reveals the network stack issue — the paper's central
demonstration of why conditioning matters.

Run:  python examples/conditioning_rca.py
"""

from repro.workloads.scenarios import (
    conditioning_scenario,
    conditioning_scenario_fixed,
)


def main() -> None:
    scenario = conditioning_scenario(seed=0)
    print(f"Scenario: {scenario.description}")

    session = scenario.session()
    session.set_condition(None)
    print("\n--- step 1: unconditioned search (L2) ---")
    raw = session.explain(scorer="L2")
    print(raw.render(8))
    print("\nEverything load-driven scores high; no clear evidence.")

    print("\n--- step 2: condition on the observed input size ---")
    session.set_condition("pipeline_input_rate")
    conditioned = session.explain(scorer="L2")
    print(conditioned.render(8))

    raw_rank = raw.rank_of("tcp_retransmits")
    cond_rank = conditioned.rank_of("tcp_retransmits")
    print(f"\ntcp_retransmits moved from rank {raw_rank} to rank "
          f"{cond_rank} after conditioning — residual runtime variance "
          f"is explained by packet retransmissions, pointing at the "
          f"network stack.")

    print("\n--- step 3: after deploying the buffer fix ---")
    fixed = conditioning_scenario_fixed(seed=0)
    fixed_session = fixed.session()
    fixed_session.set_condition("pipeline_input_rate")
    post = fixed_session.explain(scorer="L2")
    print(post.render(5))
    score = post.score_of("tcp_retransmits")
    print(f"\nretransmits now score {score:.3f} — the fix eliminated the "
          f"dependence, validating the hypothesis (the paper saw a ~10% "
          f"runtime reduction).")


if __name__ == "__main__":
    main()
