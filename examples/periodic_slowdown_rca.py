"""Case study §5.3: the periodic namenode slowdown (Table 4 / Figure 7).

Every ~15 minutes the pipeline runtime spikes for ~5 minutes even at low
load.  The global search points at the namenode family; drilling in shows
RPC latency and live threads *positively* correlated with runtime but GC
time *negatively* correlated — ruling out garbage collection and leading
to the real culprit: a service scanning the filesystem on a 15-minute
timer.

Run:  python examples/periodic_slowdown_rca.py
"""

import numpy as np

from repro.core.pseudocause import estimate_period
from repro.tsdb import SeriesId
from repro.workloads.scenarios import (
    periodic_namenode_scenario,
    periodic_namenode_scenario_fixed,
)


def main() -> None:
    scenario = periodic_namenode_scenario(seed=0)
    print(f"Scenario: {scenario.description}")

    _, runtime = scenario.store.arrays(SeriesId.make(
        "pipeline_runtime", {"pipeline_name": "pipeline-1"}))
    period = estimate_period(runtime - runtime.mean(),
                             max_period=60, min_period=5)
    print(f"\nVisual inspection (ACF): runtime spikes repeat every "
          f"~{period} samples (truth: every 15).")

    session = scenario.session()
    print("\n--- global search (CorrMax) ---")
    table = session.explain(scorer="CorrMax")
    print(table.render(10))

    print("\n--- drill-down: namenode metrics vs runtime ---")
    _, gc_time = scenario.store.arrays(SeriesId.make(
        "namenode_gc_time", {"host": "namenode-1"}))
    _, rpc_latency = scenario.store.arrays(SeriesId.make(
        "namenode_rpc_latency", {"host": "namenode-1"}))
    _, threads = scenario.store.arrays(SeriesId.make(
        "namenode_live_threads", {"host": "namenode-1"}))
    print(f"  corr(runtime, rpc_latency)  = "
          f"{np.corrcoef(runtime, rpc_latency)[0, 1]:+.2f}  (positive)")
    print(f"  corr(runtime, live_threads) = "
          f"{np.corrcoef(runtime, threads)[0, 1]:+.2f}  (positive)")
    print(f"  corr(runtime, gc_time)      = "
          f"{np.corrcoef(runtime, gc_time)[0, 1]:+.2f}  (NEGATIVE)")
    print("\nGC is ruled out (less GC during spikes); high thread counts "
          "mean a high RPC request rate — some service is hammering the "
          "namenode on a 15-minute timer (GetContentSummary).")

    print("\n--- after the fix ---")
    fixed = periodic_namenode_scenario_fixed(seed=0)
    _, fixed_runtime = fixed.store.arrays(SeriesId.make(
        "pipeline_runtime", {"pipeline_name": "pipeline-1"}))
    spikes_before = int((runtime > runtime.mean()
                         + 3 * fixed_runtime.std()).sum())
    spikes_after = int((fixed_runtime > fixed_runtime.mean()
                        + 3 * fixed_runtime.std()).sum())
    print(f"spike samples before fix: {spikes_before}; after: "
          f"{spikes_after} (Figure 7's before/after).")


if __name__ == "__main__":
    main()
