"""A tour of the declarative layer: the Appendix C SQL listings, UDFs,
and the three-stage Figure 4 pipeline, end to end.

Run:  python examples/declarative_sql_tour.py
"""

from repro.core.pipeline import DeclarativePipeline
from repro.sql import Database, Table
from repro.tsdb.adapter import register_store
from repro.workloads.scenarios import fault_injection_scenario


def main() -> None:
    scenario = fault_injection_scenario(seed=0)
    db = Database()
    register_store(db, scenario.store)

    print("--- Listing 1: select the target metric family ---")
    target = db.sql("""
        SELECT timestamp, tag['pipeline_name'],
               AVG(value) as runtime_sec
        FROM tsdb
        WHERE metric_name = 'pipeline_runtime'
            AND timestamp BETWEEN 0 and 287
        GROUP BY timestamp, tag['pipeline_name']
        ORDER BY timestamp ASC
    """)
    print(target.head_text(5))

    print("\n--- Grouping with a UDF (the paper's hostgroup example) ---")
    db.register_udf("hostgroup", lambda h: h.split("-")[0] if h else None)
    grouped = db.sql("""
        SELECT hostgroup(tag['host']) AS grp, metric_name,
               COUNT(*) AS observations
        FROM tsdb
        WHERE tag['host'] IS NOT NULL
        GROUP BY hostgroup(tag['host']), metric_name
        ORDER BY grp, metric_name
        LIMIT 8
    """)
    print(grouped.head_text(8))

    print("\n--- Metadata joins: restrict hosts by inventory attributes ---")
    db.register("inventory", Table(
        ["hostname", "os_version", "rack"],
        [("datanode-1", "5.4", "r1"), ("datanode-2", "5.4", "r1"),
         ("datanode-3", "5.8", "r2"), ("datanode-4", "5.8", "r2"),
         ("datanode-5", "5.8", "r3"), ("datanode-6", "5.8", "r3")],
    ))
    joined = db.sql("""
        SELECT inv.rack, AVG(t.value) AS avg_write_latency
        FROM tsdb t JOIN inventory inv ON tag['host'] = inv.hostname
        WHERE t.metric_name = 'disk_write_latency'
            AND inv.os_version = '5.8'
        GROUP BY inv.rack
        ORDER BY inv.rack
    """)
    print(joined.head_text())

    print("\n--- Windowing: lagged features for the scorer (§3.5) ---")
    lagged = db.sql("""
        SELECT timestamp, tag['pipeline_name'] AS p, value,
               LAG(value, 1) OVER
                   (PARTITION BY tag['pipeline_name']
                    ORDER BY timestamp) AS value_lag1,
               MOVING_AVG(value, 5) OVER
                   (PARTITION BY tag['pipeline_name']
                    ORDER BY timestamp) AS smoothed
        FROM tsdb
        WHERE metric_name = 'pipeline_runtime'
        ORDER BY p, timestamp
        LIMIT 5
    """)
    print(lagged.head_text(5))

    print("\n--- The full Figure 4 pipeline ---")
    pipeline = DeclarativePipeline(db)
    pipeline.add_feature_queries(["""
        SELECT timestamp, metric_name, AVG(value) AS v
        FROM tsdb
        WHERE metric_name IN ('tcp_retransmits', 'disk_write_latency',
                              'disk_io', 'namenode_rpc_latency',
                              'cpu_util', 'load_avg')
        GROUP BY timestamp, metric_name
        ORDER BY timestamp ASC
    """])
    pipeline.set_target_query("""
        SELECT timestamp, metric_name, AVG(value) AS runtime_sec
        FROM tsdb WHERE metric_name = 'pipeline_runtime'
        GROUP BY timestamp, metric_name ORDER BY timestamp ASC
    """)
    score_table = pipeline.run(scorer="L2-P50")
    print(score_table.render(6))

    print("\n--- The Score Table is itself queryable (stage 3) ---")
    significant = db.sql("""
        SELECT rank, family, ROUND(score, 3) AS score
        FROM score
        WHERE significant_bh = TRUE
        ORDER BY rank
    """)
    print(significant.head_text(6))


if __name__ == "__main__":
    main()
