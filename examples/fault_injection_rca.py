"""Case study §5.1: diagnosing an injected network fault (Table 3).

A 10% packet-drop rule is 'installed' on every datanode of a simulated
cluster for a few minutes.  A global search over all metric-name families
should surface, in order: the (expected) runtime/latency effect families,
then the TCP retransmission counters — the smoking gun that pointed the
paper's operators to the network.

Run:  python examples/fault_injection_rca.py
"""

from repro.workloads.scenarios import fault_injection_scenario


def main() -> None:
    scenario = fault_injection_scenario(seed=0)
    print(f"Scenario: {scenario.description}")
    print(f"Ground-truth cause families:  {sorted(scenario.causes)}")
    print(f"Ground-truth effect families: {sorted(scenario.effects)}")

    session = scenario.session()
    start, end = scenario.fault_window
    session.set_time_ranges(0, 288, explain_start=start, explain_end=end)

    print("\n--- global search across all metric families (CorrMax) ---")
    table = session.explain(scorer="CorrMax")
    print(table.render(10))

    print("\nHow anomalous is each top family inside the fault window?")
    for row in table.top(6):
        lift = session.event_lift(row.family)
        label = ("CAUSE " if row.family in scenario.causes else
                 "effect" if row.family in scenario.effects else "      ")
        print(f"  [{label}] {row.family:<24} score={row.score:.3f} "
              f"event-lift={lift:.1f}σ")

    retrans_rank = table.rank_of("tcp_retransmits")
    print(f"\nTCP retransmit counters ranked #{retrans_rank} "
          f"(paper: rank 4) — high retransmissions across all nodes "
          f"point to a network-level fault.")


if __name__ == "__main__":
    main()
