"""Quickstart: the three-step ExplainIt! workflow on the Figure 1 world.

The system: an event stream (Z = input_rate) drives a processing
pipeline (Y = runtime), which drives file-system activity (X = disk usage
and read/write latency).  The workflow of §1:

  step 1 — select the target metric and a time range;
  step 2 — select the search space (and optionally what to condition on);
  step 3 — review candidate causes ranked by causal relevance.

Run:  python examples/quickstart.py
"""

from repro.core.engine import ExplainItSession
from repro.workloads.pipeline import figure1_pipeline


def main() -> None:
    store, dag = figure1_pipeline(n_samples=400, seed=0)
    print("Ground-truth causal structure (normally unknown!):")
    for cause, effect in dag.edges():
        print(f"  {cause} -> {effect}")

    # Step 1: target + time range.
    session = ExplainItSession(store)
    session.set_time_ranges(0, 400)
    session.set_target("runtime")

    # Step 2+3: search all families, review the ranking.
    print("\n--- global search: what explains runtime? ---")
    table = session.explain(scorer="L2")
    print(table.render())

    # Interactive refinement: we know input volume varies; is the disk
    # family still an explanation once we control for it?
    print("\n--- conditioned on input_rate ---")
    session.set_condition("input_rate")
    conditioned = session.explain(scorer="L2")
    print(conditioned.render())

    disk_row = conditioned.results[0]
    print(f"\nConclusion: {disk_row.family!r} still explains "
          f"{disk_row.score:.0%} of the residual runtime variance "
          f"after controlling for input volume "
          f"(p = {disk_row.p_value:.2e}).")


if __name__ == "__main__":
    main()
