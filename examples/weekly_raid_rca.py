"""Case study §5.4: weekly spikes and the RAID consistency check.

Occasionally all pipelines run slow with no change in input.  Only a
month-long time range reveals the regularity: spikes with a period of one
week lasting ~4 hours — the RAID controller's scheduled consistency
check.  The controlled experiment (Figure 9) toggles the check's
bandwidth cap and watches the runtime respond.

Run:  python examples/weekly_raid_rca.py
"""

import numpy as np

from repro.core.pseudocause import estimate_period
from repro.tsdb import SeriesId
from repro.workloads.scenarios import (
    raid_intervention_experiment,
    weekly_raid_scenario,
)


def main() -> None:
    scenario = weekly_raid_scenario(seed=0)
    print(f"Scenario: {scenario.description}")

    print("\n--- global search over a month of data (CorrMax) ---")
    session = scenario.session()
    table = session.explain(scorer="CorrMax")
    print(table.render(10))
    print("\nDisk IO / latency and load-average families rank high "
          "(Table 5's ranks 3-4); the RAID temperature sensor "
          f"ranks #{table.rank_of('raid_temperature')} (paper: rank 7).")

    _, runtime = scenario.store.arrays(SeriesId.make(
        "pipeline_runtime", {"pipeline_name": "pipeline-1"}))
    spikes = (runtime > runtime.mean() + 1.5 * runtime.std()).astype(float)
    period = estimate_period(spikes - spikes.mean(),
                             max_period=scenario.extra["period"] + 30,
                             min_period=scenario.extra["period"] // 2 + 1)
    print(f"\nSpike-indicator periodicity: every ~{period} samples "
          f"(truth: {scenario.extra['period']} = one week).  168 hours — "
          f"the RAID patrol-read schedule!")

    print("\n--- Figure 9: the controlled intervention ---")
    experiment = raid_intervention_experiment(seed=0)
    _, runtime = experiment.store.arrays(SeriesId.make(
        "pipeline_runtime", {"pipeline_name": "pipeline-1"}))
    quarter = experiment.extra["segments"]
    labels = ["20% cap (default)", "check disabled", "20% cap again",
              "5% cap (the fix)"]
    for i, label in enumerate(labels):
        segment = runtime[i * quarter:(i + 1) * quarter]
        print(f"  {label:<20} mean runtime {segment.mean():6.1f}  "
              f"p95 {np.percentile(segment, 95):6.1f}")
    print("\nRuntime instability tracks the knob: hypothesis confirmed, "
          "fix (5% cap) shipped.")


if __name__ == "__main__":
    main()
