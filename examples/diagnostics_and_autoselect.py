"""Diagnostic plots and automatic scorer selection.

Two of the paper's 'lessons learnt' (Appendix D) and future-work items
(§6.1) in action:

1. A high score is not an explanation — the CPU-temperature family of
   Figure 14 scores well on the runtime's sawtooth but completely misses
   the spike the operator cares about.  The diagnostic overlay and the
   event-residual check catch it.
2. The engine can pick the scoring method itself from the shape of the
   search space (family widths vs sample count).

Run:  python examples/diagnostics_and_autoselect.py
"""

from repro.core.autoselect import choose_scorer, score_with_auto_selection
from repro.core.hypothesis import generate_hypotheses
from repro.core.ranking import rank_families
from repro.core.report import DiagnosticReport
from repro.workloads.scenarios import sawtooth_temperature_scenario


def main() -> None:
    scenario = sawtooth_temperature_scenario(seed=0)
    families = scenario.families()
    hypotheses = generate_hypotheses(families, scenario.target)

    print("--- ranking (L2) ---")
    table = rank_families(hypotheses, scorer="L2")
    print(table.render(5))

    print("\n--- diagnostics for the top 2 hypotheses ---")
    report = DiagnosticReport.for_ranking(
        hypotheses, table, k=2, event_window=scenario.fault_window)
    print(report.render(width=60, height=7))

    flagged = report.suspicious()
    print(f"\n{len(flagged)} hypothesis(es) flagged as Figure-14 "
          f"patterns (high score, unexplained event):")
    for diag in flagged:
        print(f"  - {diag.family} (score {diag.score:.2f}, event "
              f"residual {diag.event_residual_ratio():.1f}x)")

    print("\n--- automatic scorer selection ---")
    decision = choose_scorer(hypotheses)
    print(f"space shape: max family width {decision.max_features}, "
          f"{decision.n_samples} samples")
    print(f"chosen scorer: {decision.scorer_name}")
    print(f"reason: {decision.reason}")

    auto_table, _ = score_with_auto_selection(hypotheses)
    print("\nauto-selected ranking:")
    print(auto_table.render(5))


if __name__ == "__main__":
    main()
